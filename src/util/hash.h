// Hashing primitives used for state fingerprinting.
//
// Model checking correctness depends on fingerprint stability across runs, so
// we avoid std::hash (implementation-defined) and use FNV-1a plus a strong
// 64-bit finalizer for combining.
#ifndef SANDTABLE_SRC_UTIL_HASH_H_
#define SANDTABLE_SRC_UTIL_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace sandtable {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

// 64-bit FNV-1a over a byte range.
inline uint64_t FnvHash(const void* data, size_t len, uint64_t seed = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t FnvHash(std::string_view s, uint64_t seed = kFnvOffsetBasis) {
  return FnvHash(s.data(), s.size(), seed);
}

// SplitMix64 finalizer: a strong bijective mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Order-dependent combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

inline uint64_t HashInt(uint64_t v) { return Mix64(v); }

}  // namespace sandtable

#endif  // SANDTABLE_SRC_UTIL_HASH_H_
