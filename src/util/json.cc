#include "src/util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "src/util/strings.h"

namespace sandtable {

namespace {
const Json kNullJson;
}  // namespace

int64_t Json::as_int() const {
  if (is_double()) {
    return static_cast<int64_t>(std::get<double>(v_));
  }
  return std::get<int64_t>(v_);
}

double Json::as_double() const {
  if (is_int()) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  return std::get<double>(v_);
}

const Json& Json::operator[](const std::string& key) const {
  const auto& obj = std::get<JsonObject>(v_);
  auto it = obj.find(key);
  return it == obj.end() ? kNullJson : it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

size_t Json::size() const {
  if (is_array()) {
    return as_array().size();
  }
  if (is_object()) {
    return as_object().size();
  }
  return 0;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad = pretty ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                                 : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent * depth), ' ') : std::string();
  switch (type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += as_bool() ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(std::get<int64_t>(v_));
      break;
    case Type::kDouble: {
      const double d = std::get<double>(v_);
      if (std::isfinite(d)) {
        out += StrFormat("%.17g", d);
      } else {
        out += "null";  // JSON has no representation for NaN/Inf.
      }
      break;
    }
    case Type::kString:
      out += '"';
      out += JsonEscape(as_string());
      out += '"';
      break;
    case Type::kArray: {
      const auto& a = as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < a.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        if (pretty) {
          out += '\n';
          out += pad;
        }
        a[i].DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      const auto& o = as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : o) {
        if (!first) {
          out += ',';
        }
        first = false;
        if (pretty) {
          out += '\n';
          out += pad;
        }
        out += '"';
        out += JsonEscape(k);
        out += "\":";
        if (pretty) {
          out += ' ';
        }
        v.DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out, 0, 0);
  return out;
}

std::string Json::DumpPretty() const {
  std::string out;
  DumpTo(out, 2, 0);
  return out;
}

namespace {

// Recursive-descent JSON parser.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    SkipWs();
    auto v = ParseValue();
    if (!v.ok()) {
      return v;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Result<Json> Fail(const std::string& msg) {
    return Result<Json>::Error(StrFormat("JSON parse error at offset %zu: %s", pos_, msg.c_str()));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool EatLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) {
          return Result<Json>::Error(s.error());
        }
        return Json(std::move(s).value());
      }
      case 't':
        if (EatLiteral("true")) {
          return Json(true);
        }
        return Fail("invalid literal");
      case 'f':
        if (EatLiteral("false")) {
          return Json(false);
        }
        return Fail("invalid literal");
      case 'n':
        if (EatLiteral("null")) {
          return Json(nullptr);
        }
        return Fail("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // consume '{'
    JsonObject obj;
    SkipWs();
    if (Eat('}')) {
      return Json(std::move(obj));
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected string key");
      }
      auto key = ParseString();
      if (!key.ok()) {
        return Result<Json>::Error(key.error());
      }
      SkipWs();
      if (!Eat(':')) {
        return Fail("expected ':' after key");
      }
      SkipWs();
      auto val = ParseValue();
      if (!val.ok()) {
        return val;
      }
      obj[std::move(key).value()] = std::move(val).value();
      SkipWs();
      if (Eat(',')) {
        continue;
      }
      if (Eat('}')) {
        return Json(std::move(obj));
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // consume '['
    JsonArray arr;
    SkipWs();
    if (Eat(']')) {
      return Json(std::move(arr));
    }
    for (;;) {
      SkipWs();
      auto val = ParseValue();
      if (!val.ok()) {
        return val;
      }
      arr.push_back(std::move(val).value());
      SkipWs();
      if (Eat(',')) {
        continue;
      }
      if (Eat(']')) {
        return Json(std::move(arr));
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // consume '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Result<std::string>::Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Result<std::string>::Error("bad \\u escape");
            }
          }
          // Encode as UTF-8 (no surrogate-pair handling; traces are ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Result<std::string>::Error("bad escape character");
      }
    }
    return Result<std::string>::Error("unterminated string");
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (Eat('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") {
      return Fail("invalid number");
    }
    if (!is_double) {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && p == tok.data() + tok.size()) {
        return Json(v);
      }
    }
    double d = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
      return Fail("invalid number");
    }
    return Json(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) { return Parser(text).Parse(); }

}  // namespace sandtable
