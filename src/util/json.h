// A small self-contained JSON document model with parser and serializer.
//
// Used for trace files (JSONL), engine command wire format, and experiment
// output. Supports the full JSON grammar except that numbers are restricted
// to 64-bit integers and doubles.
#ifndef SANDTABLE_SRC_UTIL_JSON_H_
#define SANDTABLE_SRC_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/util/result.h"

namespace sandtable {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps keys ordered, giving deterministic serialization.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : v_(b) {}                // NOLINT(google-explicit-constructor)
  Json(int i) : v_(static_cast<int64_t>(i)) {}       // NOLINT
  Json(int64_t i) : v_(i) {}                         // NOLINT
  Json(uint64_t i) : v_(static_cast<int64_t>(i)) {}  // NOLINT
  Json(double d) : v_(d) {}                          // NOLINT
  Json(const char* s) : v_(std::string(s)) {}        // NOLINT
  Json(std::string s) : v_(std::move(s)) {}          // NOLINT
  Json(JsonArray a) : v_(std::move(a)) {}            // NOLINT
  Json(JsonObject o) : v_(std::move(o)) {}           // NOLINT

  Type type() const { return static_cast<Type>(v_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool as_bool() const { return std::get<bool>(v_); }
  int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(v_); }
  JsonArray& as_array() { return std::get<JsonArray>(v_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(v_); }
  JsonObject& as_object() { return std::get<JsonObject>(v_); }

  // Object field access; returns a shared null for missing keys.
  const Json& operator[](const std::string& key) const;
  Json& operator[](const std::string& key) { return std::get<JsonObject>(v_)[key]; }
  bool contains(const std::string& key) const;

  // Array element access.
  const Json& operator[](size_t i) const { return std::get<JsonArray>(v_)[i]; }
  size_t size() const;

  bool operator==(const Json& other) const { return v_ == other.v_; }

  // Compact single-line serialization.
  std::string Dump() const;
  // Pretty serialization with 2-space indentation.
  std::string DumpPretty() const;

  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, JsonArray, JsonObject> v_;
};

// Escape a string for embedding in JSON (adds no quotes).
std::string JsonEscape(std::string_view s);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_UTIL_JSON_H_
