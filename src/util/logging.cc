#include "src/util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "src/util/run_id.h"

namespace sandtable {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};

// Monotonic time base shared by every stderr line, initialized on first log.
std::chrono::steady_clock::time_point LogEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Small sequential thread ids (main thread = 0 if it logs first) — far easier
// to correlate across interleaved worker output than std::thread::id values.
int ThisThreadLogId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetGlobalLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GlobalLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace internal {

std::string FormatLogLine(LogLevel level, const std::string& line) {
  // Prefix order: run id fragment (joins the line to every other artifact of
  // the run), global sequence number (total order across threads — timestamps
  // alone tie at ms granularity), elapsed monotonic seconds, thread id,
  // level. Per-node engine sinks (log-parsing observation channel) bypass
  // this formatting entirely.
  static std::atomic<uint64_t> g_seq{0};
  const uint64_t seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - LogEpoch()).count();
  char prefix[128];
  std::snprintf(prefix, sizeof(prefix), "[%s #%06llu %10.3f T%02d %s] ",
                ShortRunId().c_str(), static_cast<unsigned long long>(seq),
                elapsed, ThisThreadLogId(), LogLevelName(level));
  return std::string(prefix) + line;
}

void EmitLog(LogLevel level, const std::string& line) {
  if (static_cast<int>(level) < g_min_level.load()) {
    return;
  }
  std::fprintf(stderr, "%s\n", FormatLogLine(level, line).c_str());
}

LogMessage::LogMessage(LogLevel level, const char* file, int line, LogSink* sink)
    : level_(level), sink_(sink) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (sink_ != nullptr && *sink_) {
    (*sink_)(level_, stream_.str());
  } else {
    EmitLog(level_, stream_.str());
  }
}

}  // namespace internal
}  // namespace sandtable
