#include "src/util/logging.h"

#include <atomic>
#include <cstdio>

namespace sandtable {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetGlobalLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GlobalLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace internal {

void EmitLog(LogLevel level, const std::string& line) {
  if (static_cast<int>(level) < g_min_level.load()) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LogLevelName(level), line.c_str());
}

LogMessage::LogMessage(LogLevel level, const char* file, int line, LogSink* sink)
    : level_(level), sink_(sink) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (sink_ != nullptr && *sink_) {
    (*sink_)(level_, stream_.str());
  } else {
    EmitLog(level_, stream_.str());
  }
}

}  // namespace internal
}  // namespace sandtable
