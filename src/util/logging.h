// Minimal leveled logging.
//
// The engine additionally captures per-node log lines for the log-parsing
// state-observation channel (see src/conformance); that path uses LogSink so
// the target "implementation" code logs exactly like a real system would.
#ifndef SANDTABLE_SRC_UTIL_LOGGING_H_
#define SANDTABLE_SRC_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace sandtable {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
};

const char* LogLevelName(LogLevel level);

// Global minimum level for the default stderr sink.
void SetGlobalLogLevel(LogLevel level);
LogLevel GlobalLogLevel();

// A sink receives fully formatted lines. Nodes in the deterministic engine get
// their own sink so the conformance checker can parse their output.
using LogSink = std::function<void(LogLevel, const std::string&)>;

namespace internal {

void EmitLog(LogLevel level, const std::string& line);

// Formats one stderr line (no trailing newline):
//   [<run8> #<seq> <elapsed>s T<tid> <LEVEL>] <line>
// <seq> is a global monotonic counter, so interleaved parallel-worker output
// can be re-sorted into emission order; <run8> is ShortRunId(). Exposed for
// tests; EmitLog is this plus the level filter and the fprintf.
std::string FormatLogLine(LogLevel level, const std::string& line);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, LogSink* sink = nullptr);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  LogSink* sink_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sandtable

#define ST_LOG(level)                                                              \
  ::sandtable::internal::LogMessage(::sandtable::LogLevel::level, __FILE__, __LINE__)

#define ST_LOG_TO(level, sink)                                                     \
  ::sandtable::internal::LogMessage(::sandtable::LogLevel::level, __FILE__, __LINE__, (sink))

#endif  // SANDTABLE_SRC_UTIL_LOGGING_H_
