// Result<T>: value-or-error for recoverable failures (parsing, IO, protocol).
//
// This codebase does not use exceptions; fatal programmer errors use CHECK and
// recoverable errors return Result.
#ifndef SANDTABLE_SRC_UTIL_RESULT_H_
#define SANDTABLE_SRC_UTIL_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/check.h"

namespace sandtable {

template <typename T>
class Result {
 public:
  // Success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  // Failure with a human-readable message.
  static Result Error(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    CHECK(ok()) << "Result::value() on error: " << error_;
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << "Result::value() on error: " << error_;
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << "Result::value() on error: " << error_;
    return std::move(*value_);
  }

  const std::string& error() const {
    CHECK(!ok());
    return error_;
  }

 private:
  Result() = default;

  std::optional<T> value_;
  std::string error_;
};

// Status-like result for operations with no payload.
class Status {
 public:
  Status() = default;
  static Status Error(std::string message) {
    Status s;
    s.error_ = std::move(message);
    s.ok_ = false;
    return s;
  }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const std::string& error() const {
    CHECK(!ok_);
    return error_;
  }

 private:
  bool ok_ = true;
  std::string error_;
};

}  // namespace sandtable

#endif  // SANDTABLE_SRC_UTIL_RESULT_H_
