// Deterministic random number generation.
//
// Every randomized component (random walk, workload generation, failure
// injection) takes an explicit Rng seeded by the caller, so runs are
// reproducible from the seed alone — a requirement for deterministic replay.
#ifndef SANDTABLE_SRC_UTIL_RNG_H_
#define SANDTABLE_SRC_UTIL_RNG_H_

#include <cstdint>

#include "src/util/check.h"

namespace sandtable {

// xoshiro256** seeded via SplitMix64. Fast, high quality, and stable across
// platforms (unlike std::mt19937's distribution functions).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be positive.
  uint64_t Below(uint64_t bound) {
    CHECK_GT(bound, 0u);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Bernoulli draw with probability num/den.
  bool Chance(uint64_t num, uint64_t den) {
    CHECK_GT(den, 0u);
    return Below(den) < num;
  }

  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace sandtable

#endif  // SANDTABLE_SRC_UTIL_RNG_H_
