#include "src/util/run_id.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <random>

namespace sandtable {

namespace {

std::mutex g_mu;
std::string g_run_id;    // guarded by g_mu; empty until minted/set
std::string g_short_id;  // guarded by g_mu; derived from g_run_id

std::string ToHex16(uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string NewRunId() {
  // Mix wall clock, pid, and a PRNG seeded from random_device so two runs
  // started in the same tick on the same host still diverge.
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  static std::atomic<uint64_t> counter{0};
  std::random_device rd;
  uint64_t mixed = now ^ (static_cast<uint64_t>(::getpid()) << 32) ^
                   (static_cast<uint64_t>(rd()) << 16) ^
                   counter.fetch_add(0x9e3779b97f4a7c15ull,
                                     std::memory_order_relaxed);
  // splitmix64 finalizer: spreads the entropy across all 16 hex chars.
  mixed ^= mixed >> 30;
  mixed *= 0xbf58476d1ce4e5b9ull;
  mixed ^= mixed >> 27;
  mixed *= 0x94d049bb133111ebull;
  mixed ^= mixed >> 31;
  return ToHex16(mixed);
}

std::string RunId() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_run_id.empty()) {
    g_run_id = NewRunId();
    g_short_id = g_run_id.substr(0, 8);
  }
  return g_run_id;
}

void SetRunId(const std::string& id) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_run_id = id.empty() ? NewRunId() : id;
  g_short_id = g_run_id.substr(0, 8);
}

std::string ShortRunId() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_run_id.empty()) {
    g_run_id = NewRunId();
    g_short_id = g_run_id.substr(0, 8);
  }
  return g_short_id;
}

const char* BuildVersion() {
#ifdef SANDTABLE_GIT_DESCRIBE
  return SANDTABLE_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

}  // namespace sandtable
