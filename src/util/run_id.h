// Process-wide run identity, shared by every observability artifact.
//
// A "run" is one checking invocation (a CLI command, a serve job, a bench
// row set). Every artifact it produces — progress JSONL lines, the final
// report, Chrome trace metadata, flight-recorder dumps, /metrics — carries
// the same run_id so they can be joined after the fact. The id is minted
// lazily on first use and can be overridden (CLI --run-id, serve submit
// param) before or during a run; serve jobs mint their own per-job ids with
// NewRunId() so concurrent tenants stay distinguishable.
#ifndef SANDTABLE_SRC_UTIL_RUN_ID_H_
#define SANDTABLE_SRC_UTIL_RUN_ID_H_

#include <string>

namespace sandtable {

// The process-wide run id: 16 lowercase hex chars, minted on first call.
// Thread-safe; stable for the life of the process unless SetRunId is called.
// Returned by value: SetRunId may swap the backing string concurrently.
std::string RunId();

// Overrides the process-wide run id (e.g. --run-id). Callers should do this
// before the run starts; changing it mid-run splits the artifacts.
void SetRunId(const std::string& id);

// Mints a fresh id without touching the process-wide one (per-job ids in the
// serve daemon).
std::string NewRunId();

// First 8 chars of RunId() — compact form for log-line prefixes.
std::string ShortRunId();

// Build version from `git describe` baked in at configure time ("unknown"
// when built outside a git checkout).
const char* BuildVersion();

}  // namespace sandtable

#endif  // SANDTABLE_SRC_UTIL_RUN_ID_H_
