// Cooperative cancellation for long-running engine work.
//
// A StopToken is a single sticky flag shared between a controller (a signal
// handler, the serve scheduler, a test) and the engine loops that poll it.
// Engines treat a raised token like a budget limit: they stop at the next
// natural sampling point (per expanded state / per walk step / per chunk),
// finalize their result with `cancelled = true`, and return normally — no
// exceptions, no thread interruption, checkpoints still get written.
//
// RequestStop() is a relaxed atomic store, so it is async-signal-safe and may
// be called from a SIGINT/SIGTERM handler. The token must outlive every
// engine borrowing it.
#ifndef SANDTABLE_SRC_UTIL_STOP_TOKEN_H_
#define SANDTABLE_SRC_UTIL_STOP_TOKEN_H_

#include <atomic>

namespace sandtable {

class StopToken {
 public:
  StopToken() = default;
  StopToken(const StopToken&) = delete;
  StopToken& operator=(const StopToken&) = delete;

  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

  // Re-arm a token between runs (the CLI reuses one across subcommand steps;
  // tests reuse one across cases). Not safe concurrently with RequestStop.
  void Reset() { stop_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_{false};
};

// Null-safe polling helper: engines take `const StopToken*` options that
// default to nullptr, and a null token never requests a stop.
inline bool StopRequested(const StopToken* token) {
  return token != nullptr && token->stop_requested();
}

}  // namespace sandtable

#endif  // SANDTABLE_SRC_UTIL_STOP_TOKEN_H_
