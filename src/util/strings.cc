#include "src/util/strings.h"

#include <cstdio>

namespace sandtable {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace sandtable
