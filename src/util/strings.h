// Small string helpers shared across the codebase.
#ifndef SANDTABLE_SRC_UTIL_STRINGS_H_
#define SANDTABLE_SRC_UTIL_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace sandtable {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Join with a separator.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

// True if `s` begins with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Strip ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_UTIL_STRINGS_H_
