#include "src/value/value.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "src/util/check.h"
#include "src/util/hash.h"
#include "src/util/strings.h"

namespace sandtable {

// Per-node permutation-hash cache for SymmetricMinHash (see value.h). One
// block caches HashPermuted for every permutation of one symmetry context
// (identified by `epoch`). Entry `pi` is valid once bit `pi` of `mask` is
// set; the value store is sequenced before the mask fetch_or (release), so a
// reader that acquires the bit sees the value. Concurrent writers compute the
// same deterministic hash, so duplicated fill-ins are benign.
//
// When the symmetry context changes (a different spec is checked), stale
// blocks are replaced lazily; the old block is retired onto `prev` rather
// than freed so that a racing reader that loaded the pointer just before the
// swap never dereferences freed memory. Retired blocks are reclaimed with the
// node. Context switches happen between checking runs, so the chain length is
// bounded by the number of distinct specs a node's value participates in
// (almost always 1).
struct PermCacheBlock {
  explicit PermCacheBlock(uint64_t e, size_t nperms)
      : epoch(e), vals(new std::atomic<uint64_t>[nperms]) {}
  const uint64_t epoch;
  std::atomic<uint32_t> mask{0};
  std::unique_ptr<std::atomic<uint64_t>[]> vals;
  PermCacheBlock* prev = nullptr;  // retired predecessor, freed with the node
};

struct Value::Node {
  ValueKind kind;
  // Memoized structural hash: `hash_computed` is released after `hash` so a
  // thread that acquires the flag sees the value. Racing threads recompute
  // the same hash, which is harmless.
  mutable std::atomic<uint64_t> hash{0};
  mutable std::atomic<bool> hash_computed{false};

  mutable std::atomic<PermCacheBlock*> perm_cache{nullptr};

  int64_t i = 0;                     // kBool (0/1), kInt, kModel (index)
  std::string s;                     // kString, kModel (class name)
  std::vector<Value> elems;          // kSeq, kSet
  std::vector<Field> fields;         // kRecord
  std::vector<Pair> pairs;           // kFun

  ~Node() {
    PermCacheBlock* blk = perm_cache.load(std::memory_order_relaxed);
    while (blk != nullptr) {
      PermCacheBlock* prev = blk->prev;
      delete blk;
      blk = prev;
    }
  }
};

namespace {

std::shared_ptr<Value::Node> MakeNode(ValueKind kind) {
  auto node = std::make_shared<Value::Node>();
  node->kind = kind;
  return node;
}

}  // namespace

Value::Value() : Value(Int(0)) {}

Value Value::Bool(bool b) {
  auto node = MakeNode(ValueKind::kBool);
  node->i = b ? 1 : 0;
  return Value(std::move(node));
}

Value Value::Int(int64_t i) {
  auto node = MakeNode(ValueKind::kInt);
  node->i = i;
  return Value(std::move(node));
}

Value Value::Str(std::string s) {
  auto node = MakeNode(ValueKind::kString);
  node->s = std::move(s);
  return Value(std::move(node));
}

Value Value::Model(std::string cls, int index) {
  CHECK_GE(index, 0);
  auto node = MakeNode(ValueKind::kModel);
  node->s = std::move(cls);
  node->i = index;
  return Value(std::move(node));
}

Value Value::Seq(std::vector<Value> elems) {
  auto node = MakeNode(ValueKind::kSeq);
  node->elems = std::move(elems);
  return Value(std::move(node));
}

Value Value::EmptySeq() { return Seq({}); }

Value Value::Set(std::vector<Value> elems) {
  std::sort(elems.begin(), elems.end());
  elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
  auto node = MakeNode(ValueKind::kSet);
  node->elems = std::move(elems);
  return Value(std::move(node));
}

Value Value::EmptySet() { return Set({}); }

Value Value::Record(std::vector<Field> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const Field& a, const Field& b) { return a.first < b.first; });
  for (size_t i = 1; i < fields.size(); ++i) {
    CHECK(fields[i - 1].first != fields[i].first)
        << "duplicate record field: " << fields[i].first;
  }
  auto node = MakeNode(ValueKind::kRecord);
  node->fields = std::move(fields);
  return Value(std::move(node));
}

Value Value::Fun(std::vector<Pair> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.first < b.first; });
  for (size_t i = 1; i < pairs.size(); ++i) {
    CHECK(pairs[i - 1].first != pairs[i].first)
        << "duplicate function key: " << pairs[i].first.ToString();
  }
  auto node = MakeNode(ValueKind::kFun);
  node->pairs = std::move(pairs);
  return Value(std::move(node));
}

Value Value::EmptyFun() { return Fun({}); }

ValueKind Value::kind() const { return node().kind; }

bool Value::bool_v() const {
  CHECK(is(ValueKind::kBool));
  return node().i != 0;
}

int64_t Value::int_v() const {
  CHECK(is(ValueKind::kInt));
  return node().i;
}

const std::string& Value::str_v() const {
  CHECK(is(ValueKind::kString));
  return node().s;
}

const std::string& Value::model_class() const {
  CHECK(is(ValueKind::kModel));
  return node().s;
}

int Value::model_index() const {
  CHECK(is(ValueKind::kModel));
  return static_cast<int>(node().i);
}

const std::vector<Value>& Value::elems() const {
  CHECK(is(ValueKind::kSeq) || is(ValueKind::kSet));
  return node().elems;
}

const std::vector<Value::Field>& Value::record_fields() const {
  CHECK(is(ValueKind::kRecord));
  return node().fields;
}

const std::vector<Value::Pair>& Value::fun_pairs() const {
  CHECK(is(ValueKind::kFun));
  return node().pairs;
}

size_t Value::size() const {
  switch (kind()) {
    case ValueKind::kSeq:
    case ValueKind::kSet:
      return node().elems.size();
    case ValueKind::kRecord:
      return node().fields.size();
    case ValueKind::kFun:
      return node().pairs.size();
    default:
      return 0;
  }
}

bool Value::has_field(std::string_view name) const {
  const auto& fields = record_fields();
  auto it = std::lower_bound(fields.begin(), fields.end(), name,
                             [](const Field& f, std::string_view n) { return f.first < n; });
  return it != fields.end() && it->first == name;
}

const Value& Value::field(std::string_view name) const {
  const auto& fields = record_fields();
  auto it = std::lower_bound(fields.begin(), fields.end(), name,
                             [](const Field& f, std::string_view n) { return f.first < n; });
  CHECK(it != fields.end() && it->first == name) << "missing record field: " << name;
  return it->second;
}

Value Value::WithField(std::string_view name, Value v) const {
  std::vector<Field> fields = record_fields();
  auto it = std::lower_bound(fields.begin(), fields.end(), name,
                             [](const Field& f, std::string_view n) { return f.first < n; });
  if (it != fields.end() && it->first == name) {
    it->second = std::move(v);
  } else {
    fields.insert(it, Field(std::string(name), std::move(v)));
  }
  auto node = MakeNode(ValueKind::kRecord);
  node->fields = std::move(fields);
  return Value(std::move(node));
}

Value Value::WithoutField(std::string_view name) const {
  std::vector<Field> fields = record_fields();
  auto it = std::lower_bound(fields.begin(), fields.end(), name,
                             [](const Field& f, std::string_view n) { return f.first < n; });
  if (it != fields.end() && it->first == name) {
    fields.erase(it);
  }
  auto node = MakeNode(ValueKind::kRecord);
  node->fields = std::move(fields);
  return Value(std::move(node));
}

const Value& Value::at(size_t index) const {
  const auto& e = elems();
  CHECK_LT(index, e.size());
  return e[index];
}

Value Value::Append(Value v) const {
  CHECK(is(ValueKind::kSeq));
  std::vector<Value> e = node().elems;
  e.push_back(std::move(v));
  return Seq(std::move(e));
}

Value Value::Head() const {
  CHECK(is(ValueKind::kSeq));
  CHECK(!empty()) << "Head of empty sequence";
  return node().elems.front();
}

Value Value::Tail() const {
  CHECK(is(ValueKind::kSeq));
  CHECK(!empty()) << "Tail of empty sequence";
  return Seq(std::vector<Value>(node().elems.begin() + 1, node().elems.end()));
}

Value Value::DropLast() const {
  CHECK(is(ValueKind::kSeq));
  CHECK(!empty()) << "DropLast of empty sequence";
  return Seq(std::vector<Value>(node().elems.begin(), node().elems.end() - 1));
}

Value Value::SubSeq(size_t from1, size_t to1) const {
  CHECK(is(ValueKind::kSeq));
  const auto& e = node().elems;
  if (from1 < 1) {
    from1 = 1;
  }
  if (to1 > e.size()) {
    to1 = e.size();
  }
  if (from1 > to1) {
    return EmptySeq();
  }
  return Seq(std::vector<Value>(e.begin() + static_cast<long>(from1 - 1),
                                e.begin() + static_cast<long>(to1)));
}

Value Value::SeqSet(size_t index, Value v) const {
  CHECK(is(ValueKind::kSeq));
  std::vector<Value> e = node().elems;
  CHECK_LT(index, e.size());
  e[index] = std::move(v);
  return Seq(std::move(e));
}

bool Value::Contains(const Value& v) const {
  CHECK(is(ValueKind::kSet));
  const auto& e = node().elems;
  return std::binary_search(e.begin(), e.end(), v);
}

Value Value::SetAdd(Value v) const {
  CHECK(is(ValueKind::kSet));
  std::vector<Value> e = node().elems;
  auto it = std::lower_bound(e.begin(), e.end(), v);
  if (it != e.end() && *it == v) {
    return *this;
  }
  e.insert(it, std::move(v));
  auto node_out = MakeNode(ValueKind::kSet);
  node_out->elems = std::move(e);
  return Value(std::move(node_out));
}

Value Value::SetRemove(const Value& v) const {
  CHECK(is(ValueKind::kSet));
  std::vector<Value> e = node().elems;
  auto it = std::lower_bound(e.begin(), e.end(), v);
  if (it == e.end() || *it != v) {
    return *this;
  }
  e.erase(it);
  auto node_out = MakeNode(ValueKind::kSet);
  node_out->elems = std::move(e);
  return Value(std::move(node_out));
}

Value Value::SetUnion(const Value& other) const {
  CHECK(is(ValueKind::kSet));
  CHECK(other.is(ValueKind::kSet));
  std::vector<Value> e = node().elems;
  e.insert(e.end(), other.node().elems.begin(), other.node().elems.end());
  return Set(std::move(e));
}

bool Value::FunHas(const Value& key) const {
  const auto& p = fun_pairs();
  auto it = std::lower_bound(p.begin(), p.end(), key,
                             [](const Pair& a, const Value& k) { return a.first < k; });
  return it != p.end() && it->first == key;
}

const Value& Value::Apply(const Value& key) const {
  const auto& p = fun_pairs();
  auto it = std::lower_bound(p.begin(), p.end(), key,
                             [](const Pair& a, const Value& k) { return a.first < k; });
  CHECK(it != p.end() && it->first == key) << "function applied outside domain: "
                                           << key.ToString();
  return it->second;
}

Value Value::FunSet(const Value& key, Value v) const {
  std::vector<Pair> p = fun_pairs();
  auto it = std::lower_bound(p.begin(), p.end(), key,
                             [](const Pair& a, const Value& k) { return a.first < k; });
  if (it != p.end() && it->first == key) {
    it->second = std::move(v);
  } else {
    p.insert(it, Pair(key, std::move(v)));
  }
  auto node_out = MakeNode(ValueKind::kFun);
  node_out->pairs = std::move(p);
  return Value(std::move(node_out));
}

Value Value::FunRemove(const Value& key) const {
  std::vector<Pair> p = fun_pairs();
  auto it = std::lower_bound(p.begin(), p.end(), key,
                             [](const Pair& a, const Value& k) { return a.first < k; });
  if (it != p.end() && it->first == key) {
    p.erase(it);
  }
  auto node_out = MakeNode(ValueKind::kFun);
  node_out->pairs = std::move(p);
  return Value(std::move(node_out));
}

uint64_t Value::hash() const {
  const Node& n = node();
  if (n.hash_computed.load(std::memory_order_acquire)) {
    return n.hash.load(std::memory_order_relaxed);
  }
  uint64_t h = HashInt(static_cast<uint64_t>(n.kind) + 0x51ULL);
  switch (n.kind) {
    case ValueKind::kBool:
    case ValueKind::kInt:
      h = HashCombine(h, HashInt(static_cast<uint64_t>(n.i)));
      break;
    case ValueKind::kString:
      h = HashCombine(h, FnvHash(n.s));
      break;
    case ValueKind::kModel:
      h = HashCombine(h, FnvHash(n.s));
      h = HashCombine(h, HashInt(static_cast<uint64_t>(n.i)));
      break;
    case ValueKind::kSeq:
    case ValueKind::kSet:
      for (const Value& v : n.elems) {
        h = HashCombine(h, v.hash());
      }
      break;
    case ValueKind::kRecord:
      for (const auto& [name, v] : n.fields) {
        h = HashCombine(h, FnvHash(name));
        h = HashCombine(h, v.hash());
      }
      break;
    case ValueKind::kFun:
      for (const auto& [k, v] : n.pairs) {
        h = HashCombine(h, k.hash());
        h = HashCombine(h, v.hash());
      }
      break;
  }
  n.hash.store(h, std::memory_order_relaxed);
  n.hash_computed.store(true, std::memory_order_release);
  return h;
}

int Compare(const Value& a, const Value& b) {
  if (&a == &b) {
    return 0;
  }
  const ValueKind ka = a.kind();
  const ValueKind kb = b.kind();
  if (ka != kb) {
    return ka < kb ? -1 : 1;
  }
  auto cmp_int = [](int64_t x, int64_t y) { return x < y ? -1 : (x > y ? 1 : 0); };
  switch (ka) {
    case ValueKind::kBool:
      return cmp_int(a.bool_v() ? 1 : 0, b.bool_v() ? 1 : 0);
    case ValueKind::kInt:
      return cmp_int(a.int_v(), b.int_v());
    case ValueKind::kString:
      return a.str_v().compare(b.str_v());
    case ValueKind::kModel: {
      const int c = a.model_class().compare(b.model_class());
      if (c != 0) {
        return c;
      }
      return cmp_int(a.model_index(), b.model_index());
    }
    case ValueKind::kSeq:
    case ValueKind::kSet: {
      const auto& ea = a.elems();
      const auto& eb = b.elems();
      const size_t n = std::min(ea.size(), eb.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = Compare(ea[i], eb[i]);
        if (c != 0) {
          return c;
        }
      }
      return cmp_int(static_cast<int64_t>(ea.size()), static_cast<int64_t>(eb.size()));
    }
    case ValueKind::kRecord: {
      const auto& fa = a.record_fields();
      const auto& fb = b.record_fields();
      const size_t n = std::min(fa.size(), fb.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = fa[i].first.compare(fb[i].first);
        if (c != 0) {
          return c;
        }
        const int cv = Compare(fa[i].second, fb[i].second);
        if (cv != 0) {
          return cv;
        }
      }
      return cmp_int(static_cast<int64_t>(fa.size()), static_cast<int64_t>(fb.size()));
    }
    case ValueKind::kFun: {
      const auto& pa = a.fun_pairs();
      const auto& pb = b.fun_pairs();
      const size_t n = std::min(pa.size(), pb.size());
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(pa[i].first, pb[i].first);
        if (c != 0) {
          return c;
        }
        c = Compare(pa[i].second, pb[i].second);
        if (c != 0) {
          return c;
        }
      }
      return cmp_int(static_cast<int64_t>(pa.size()), static_cast<int64_t>(pb.size()));
    }
  }
  return 0;
}

bool Value::operator==(const Value& other) const {
  if (node_ == other.node_) {
    return true;
  }
  if (hash() != other.hash()) {
    return false;
  }
  return Compare(*this, other) == 0;
}

bool Value::operator<(const Value& other) const { return Compare(*this, other) < 0; }

Value Value::PermuteModel(const std::string& cls, const std::vector<int>& perm) const {
  const Node& n = node();
  switch (n.kind) {
    case ValueKind::kBool:
    case ValueKind::kInt:
    case ValueKind::kString:
      return *this;
    case ValueKind::kModel: {
      if (n.s != cls) {
        return *this;
      }
      const auto idx = static_cast<size_t>(n.i);
      CHECK_LT(idx, perm.size());
      if (perm[idx] == n.i) {
        return *this;
      }
      return Model(n.s, perm[idx]);
    }
    case ValueKind::kSeq: {
      std::vector<Value> out;
      out.reserve(n.elems.size());
      bool changed = false;
      for (const Value& v : n.elems) {
        Value pv = v.PermuteModel(cls, perm);
        changed = changed || !(pv == v);
        out.push_back(std::move(pv));
      }
      return changed ? Seq(std::move(out)) : *this;
    }
    case ValueKind::kSet: {
      std::vector<Value> out;
      out.reserve(n.elems.size());
      bool changed = false;
      for (const Value& v : n.elems) {
        Value pv = v.PermuteModel(cls, perm);
        changed = changed || !(pv == v);
        out.push_back(std::move(pv));
      }
      return changed ? Set(std::move(out)) : *this;
    }
    case ValueKind::kRecord: {
      std::vector<Field> out;
      out.reserve(n.fields.size());
      bool changed = false;
      for (const auto& [name, v] : n.fields) {
        Value pv = v.PermuteModel(cls, perm);
        changed = changed || !(pv == v);
        out.emplace_back(name, std::move(pv));
      }
      return changed ? Record(std::move(out)) : *this;
    }
    case ValueKind::kFun: {
      std::vector<Pair> out;
      out.reserve(n.pairs.size());
      bool changed = false;
      for (const auto& [k, v] : n.pairs) {
        Value pk = k.PermuteModel(cls, perm);
        Value pv = v.PermuteModel(cls, perm);
        changed = changed || !(pk == k) || !(pv == v);
        out.emplace_back(std::move(pk), std::move(pv));
      }
      return changed ? Fun(std::move(out)) : *this;
    }
  }
  return *this;
}


uint64_t Value::HashPermuted(const std::string& cls, const std::vector<int>& perm) const {
  const Node& n = node();
  uint64_t h = HashInt(static_cast<uint64_t>(n.kind) + 0x51ULL);
  switch (n.kind) {
    case ValueKind::kBool:
    case ValueKind::kInt:
      return HashCombine(h, HashInt(static_cast<uint64_t>(n.i)));
    case ValueKind::kString:
      return HashCombine(h, FnvHash(n.s));
    case ValueKind::kModel: {
      h = HashCombine(h, FnvHash(n.s));
      int64_t index = n.i;
      if (n.s == cls) {
        const auto idx = static_cast<size_t>(n.i);
        CHECK_LT(idx, perm.size());
        index = perm[idx];
      }
      return HashCombine(h, HashInt(static_cast<uint64_t>(index)));
    }
    case ValueKind::kSeq:
      for (const Value& v : n.elems) {
        h = HashCombine(h, v.HashPermuted(cls, perm));
      }
      return h;
    case ValueKind::kSet: {
      // Order-independent: the permutation may reorder the canonical storage.
      std::vector<uint64_t> hashes;
      hashes.reserve(n.elems.size());
      for (const Value& v : n.elems) {
        hashes.push_back(v.HashPermuted(cls, perm));
      }
      std::sort(hashes.begin(), hashes.end());
      for (uint64_t eh : hashes) {
        h = HashCombine(h, eh);
      }
      return h;
    }
    case ValueKind::kRecord:
      for (const auto& [name, v] : n.fields) {
        h = HashCombine(h, FnvHash(name));
        h = HashCombine(h, v.HashPermuted(cls, perm));
      }
      return h;
    case ValueKind::kFun: {
      std::vector<uint64_t> hashes;
      hashes.reserve(n.pairs.size());
      for (const auto& [k, v] : n.pairs) {
        hashes.push_back(
            HashCombine(k.HashPermuted(cls, perm), v.HashPermuted(cls, perm)));
      }
      std::sort(hashes.begin(), hashes.end());
      for (uint64_t ph : hashes) {
        h = HashCombine(h, ph);
      }
      return h;
    }
  }
  return h;
}


namespace {

// The active symmetry context for SymmetricMinHash caching. Changing the
// class or the permutation count bumps the epoch, invalidating all caches.
// Writes are serialized by a mutex; the hot path is a thread-local match
// validated against the atomic epoch, so concurrent checkers exploring the
// SAME spec never touch the lock after their first fingerprint.
//
// Concurrency contract: at most one symmetry context may be in active
// concurrent use at a time (one spec per parallel checking run). Runs over
// different specs must be sequenced; this mirrors the engine's level-barrier
// structure and is documented in spec.h.
uint64_t SymEpoch(const std::string& cls, size_t nperms) {
  struct Global {
    std::mutex mu;
    std::string cls;
    size_t nperms = 0;
    std::atomic<uint64_t> epoch{1};
  };
  static Global g;
  thread_local std::string t_cls;
  thread_local size_t t_nperms = 0;
  thread_local uint64_t t_epoch = 0;
  if (t_epoch != 0 && t_nperms == nperms && t_cls == cls &&
      g.epoch.load(std::memory_order_acquire) == t_epoch) {
    return t_epoch;
  }
  std::lock_guard<std::mutex> lock(g.mu);
  if (g.cls != cls || g.nperms != nperms) {
    g.cls = cls;
    g.nperms = nperms;
    g.epoch.store(g.epoch.load(std::memory_order_relaxed) + 1,
                  std::memory_order_release);
  }
  t_cls = cls;
  t_nperms = nperms;
  t_epoch = g.epoch.load(std::memory_order_relaxed);
  return t_epoch;
}

// The cache validity mask is 32 bits; permutation indices beyond that (a
// symmetry class with n >= 5, 120+ permutations) are computed uncached.
constexpr size_t kMaxCachedPerms = 32;

}  // namespace

namespace internal_sym {

uint64_t CachedPermHash(const Value::Node& n, uint64_t epoch, const std::string& cls,
                        const std::vector<std::vector<int>>& perms, size_t pi);

}  // namespace internal_sym

uint64_t Value::SymmetricMinHash(const std::string& cls,
                                 const std::vector<std::vector<int>>& perms) const {
  const uint64_t epoch = SymEpoch(cls, perms.size());
  uint64_t best = ~uint64_t{0};
  for (size_t pi = 0; pi < perms.size(); ++pi) {
    const uint64_t h = pi < kMaxCachedPerms
                           ? internal_sym::CachedPermHash(node(), epoch, cls, perms, pi)
                           : HashPermuted(cls, perms[pi]);
    best = std::min(best, h);
  }
  return best;
}

namespace internal_sym {

uint64_t CachedPermHash(const Value::Node& n, uint64_t epoch, const std::string& cls,
                        const std::vector<std::vector<int>>& perms, size_t pi) {
  PermCacheBlock* blk = n.perm_cache.load(std::memory_order_acquire);
  if (blk == nullptr || blk->epoch != epoch) {
    auto* fresh = new PermCacheBlock(epoch, std::min(perms.size(), kMaxCachedPerms));
    fresh->prev = blk;
    if (n.perm_cache.compare_exchange_strong(blk, fresh, std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      blk = fresh;
    } else {
      // Another thread installed a block first; blk now points at it. It must
      // carry the same epoch (one context in concurrent use at a time).
      delete fresh;
    }
  }
  if ((blk->mask.load(std::memory_order_acquire) >> pi) & 1u) {
    return blk->vals[pi].load(std::memory_order_relaxed);
  }
  const std::vector<int>& perm = perms[pi];
  uint64_t h = HashInt(static_cast<uint64_t>(n.kind) + 0x51ULL);
  switch (n.kind) {
    case ValueKind::kBool:
    case ValueKind::kInt:
      h = HashCombine(h, HashInt(static_cast<uint64_t>(n.i)));
      break;
    case ValueKind::kString:
      h = HashCombine(h, FnvHash(n.s));
      break;
    case ValueKind::kModel: {
      h = HashCombine(h, FnvHash(n.s));
      int64_t index = n.i;
      if (n.s == cls) {
        index = perm[static_cast<size_t>(n.i)];
      }
      h = HashCombine(h, HashInt(static_cast<uint64_t>(index)));
      break;
    }
    case ValueKind::kSeq:
      for (const Value& v : n.elems) {
        h = HashCombine(h, CachedPermHash(v.node(), epoch, cls, perms, pi));
      }
      break;
    case ValueKind::kSet: {
      uint64_t hashes[64];
      std::vector<uint64_t> big;
      uint64_t* hs = n.elems.size() <= 64 ? hashes : (big.resize(n.elems.size()), big.data());
      for (size_t i = 0; i < n.elems.size(); ++i) {
        hs[i] = CachedPermHash(n.elems[i].node(), epoch, cls, perms, pi);
      }
      std::sort(hs, hs + n.elems.size());
      for (size_t i = 0; i < n.elems.size(); ++i) {
        h = HashCombine(h, hs[i]);
      }
      break;
    }
    case ValueKind::kRecord:
      for (const auto& [name, v] : n.fields) {
        h = HashCombine(h, FnvHash(name));
        h = HashCombine(h, CachedPermHash(v.node(), epoch, cls, perms, pi));
      }
      break;
    case ValueKind::kFun: {
      uint64_t hashes[64];
      std::vector<uint64_t> big;
      uint64_t* hs = n.pairs.size() <= 64 ? hashes : (big.resize(n.pairs.size()), big.data());
      for (size_t i = 0; i < n.pairs.size(); ++i) {
        hs[i] = HashCombine(CachedPermHash(n.pairs[i].first.node(), epoch, cls, perms, pi),
                            CachedPermHash(n.pairs[i].second.node(), epoch, cls, perms, pi));
      }
      std::sort(hs, hs + n.pairs.size());
      for (size_t i = 0; i < n.pairs.size(); ++i) {
        h = HashCombine(h, hs[i]);
      }
      break;
    }
  }
  blk->vals[pi].store(h, std::memory_order_relaxed);
  blk->mask.fetch_or(1u << pi, std::memory_order_release);
  return h;
}

}  // namespace internal_sym

std::string Value::ToString() const {
  const Node& n = node();
  switch (n.kind) {
    case ValueKind::kBool:
      return n.i != 0 ? "TRUE" : "FALSE";
    case ValueKind::kInt:
      return std::to_string(n.i);
    case ValueKind::kString:
      return "\"" + n.s + "\"";
    case ValueKind::kModel:
      return StrFormat("%s%d", n.s.c_str(), static_cast<int>(n.i) + 1);
    case ValueKind::kSeq: {
      std::string out = "<<";
      for (size_t i = 0; i < n.elems.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += n.elems[i].ToString();
      }
      return out + ">>";
    }
    case ValueKind::kSet: {
      std::string out = "{";
      for (size_t i = 0; i < n.elems.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += n.elems[i].ToString();
      }
      return out + "}";
    }
    case ValueKind::kRecord: {
      std::string out = "[";
      for (size_t i = 0; i < n.fields.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += n.fields[i].first + " |-> " + n.fields[i].second.ToString();
      }
      return out + "]";
    }
    case ValueKind::kFun: {
      if (n.pairs.empty()) {
        return "<<>>";
      }
      std::string out = "(";
      for (size_t i = 0; i < n.pairs.size(); ++i) {
        if (i > 0) {
          out += " @@ ";
        }
        out += n.pairs[i].first.ToString() + " :> " + n.pairs[i].second.ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

Json Value::ToJson() const {
  const Node& n = node();
  switch (n.kind) {
    case ValueKind::kBool:
      return Json(n.i != 0);
    case ValueKind::kInt:
      return Json(n.i);
    case ValueKind::kString:
      return Json(n.s);
    case ValueKind::kModel: {
      JsonObject o;
      o["$model"] = Json(n.s);
      o["i"] = Json(n.i);
      return Json(std::move(o));
    }
    case ValueKind::kSeq: {
      JsonArray a;
      a.reserve(n.elems.size());
      for (const Value& v : n.elems) {
        a.push_back(v.ToJson());
      }
      return Json(std::move(a));
    }
    case ValueKind::kSet: {
      JsonArray a;
      a.reserve(n.elems.size());
      for (const Value& v : n.elems) {
        a.push_back(v.ToJson());
      }
      JsonObject o;
      o["$set"] = Json(std::move(a));
      return Json(std::move(o));
    }
    case ValueKind::kRecord: {
      JsonObject o;
      for (const auto& [name, v] : n.fields) {
        o[name] = v.ToJson();
      }
      // Guard against collision with our sentinel keys.
      CHECK(o.count("$set") == 0 && o.count("$fun") == 0 && o.count("$model") == 0)
          << "record field collides with JSON sentinel";
      return Json(std::move(o));
    }
    case ValueKind::kFun: {
      JsonArray a;
      a.reserve(n.pairs.size());
      for (const auto& [k, v] : n.pairs) {
        JsonArray kv;
        kv.push_back(k.ToJson());
        kv.push_back(v.ToJson());
        a.push_back(Json(std::move(kv)));
      }
      JsonObject o;
      o["$fun"] = Json(std::move(a));
      return Json(std::move(o));
    }
  }
  return Json();
}

Result<Value> Value::FromJson(const Json& j) {
  switch (j.type()) {
    case Json::Type::kNull:
      return Result<Value>::Error("null has no Value representation");
    case Json::Type::kBool:
      return Bool(j.as_bool());
    case Json::Type::kInt:
      return Int(j.as_int());
    case Json::Type::kDouble:
      return Result<Value>::Error("doubles have no Value representation");
    case Json::Type::kString:
      return Str(j.as_string());
    case Json::Type::kArray: {
      std::vector<Value> elems;
      elems.reserve(j.size());
      for (const Json& e : j.as_array()) {
        auto v = FromJson(e);
        if (!v.ok()) {
          return v;
        }
        elems.push_back(std::move(v).value());
      }
      return Seq(std::move(elems));
    }
    case Json::Type::kObject: {
      const auto& o = j.as_object();
      if (j.contains("$model")) {
        if (!j["$model"].is_string() || !j["i"].is_int()) {
          return Result<Value>::Error("malformed $model value");
        }
        return Model(j["$model"].as_string(), static_cast<int>(j["i"].as_int()));
      }
      if (j.contains("$set")) {
        if (!j["$set"].is_array()) {
          return Result<Value>::Error("malformed $set value");
        }
        std::vector<Value> elems;
        for (const Json& e : j["$set"].as_array()) {
          auto v = FromJson(e);
          if (!v.ok()) {
            return v;
          }
          elems.push_back(std::move(v).value());
        }
        return Set(std::move(elems));
      }
      if (j.contains("$fun")) {
        if (!j["$fun"].is_array()) {
          return Result<Value>::Error("malformed $fun value");
        }
        std::vector<Pair> pairs;
        for (const Json& e : j["$fun"].as_array()) {
          if (!e.is_array() || e.size() != 2) {
            return Result<Value>::Error("malformed $fun pair");
          }
          auto k = FromJson(e[0]);
          if (!k.ok()) {
            return k;
          }
          auto v = FromJson(e[1]);
          if (!v.ok()) {
            return v;
          }
          pairs.emplace_back(std::move(k).value(), std::move(v).value());
        }
        return Fun(std::move(pairs));
      }
      std::vector<Field> fields;
      for (const auto& [name, e] : o) {
        auto v = FromJson(e);
        if (!v.ok()) {
          return v;
        }
        fields.emplace_back(name, std::move(v).value());
      }
      return Record(std::move(fields));
    }
  }
  return Result<Value>::Error("unhandled JSON type");
}

namespace {

void DiffInto(const std::string& path, const Value& a, const Value& b,
              std::vector<ValueDiffEntry>& out) {
  if (a == b) {
    return;
  }
  if (a.kind() != b.kind()) {
    out.push_back({path, a.ToString(), b.ToString()});
    return;
  }
  switch (a.kind()) {
    case ValueKind::kRecord: {
      const auto& fa = a.record_fields();
      const auto& fb = b.record_fields();
      size_t ia = 0;
      size_t ib = 0;
      while (ia < fa.size() || ib < fb.size()) {
        if (ib >= fb.size() || (ia < fa.size() && fa[ia].first < fb[ib].first)) {
          out.push_back({path + "." + fa[ia].first, fa[ia].second.ToString(), "<absent>"});
          ++ia;
        } else if (ia >= fa.size() || fb[ib].first < fa[ia].first) {
          out.push_back({path + "." + fb[ib].first, "<absent>", fb[ib].second.ToString()});
          ++ib;
        } else {
          DiffInto(path.empty() ? fa[ia].first : path + "." + fa[ia].first, fa[ia].second,
                   fb[ib].second, out);
          ++ia;
          ++ib;
        }
      }
      return;
    }
    case ValueKind::kFun: {
      const auto& pa = a.fun_pairs();
      const auto& pb = b.fun_pairs();
      size_t ia = 0;
      size_t ib = 0;
      while (ia < pa.size() || ib < pb.size()) {
        if (ib >= pb.size() || (ia < pa.size() && pa[ia].first < pb[ib].first)) {
          out.push_back(
              {path + "[" + pa[ia].first.ToString() + "]", pa[ia].second.ToString(), "<absent>"});
          ++ia;
        } else if (ia >= pa.size() || pb[ib].first < pa[ia].first) {
          out.push_back(
              {path + "[" + pb[ib].first.ToString() + "]", "<absent>", pb[ib].second.ToString()});
          ++ib;
        } else {
          DiffInto(path + "[" + pa[ia].first.ToString() + "]", pa[ia].second, pb[ib].second, out);
          ++ia;
          ++ib;
        }
      }
      return;
    }
    case ValueKind::kSeq: {
      const auto& ea = a.elems();
      const auto& eb = b.elems();
      const size_t n = std::max(ea.size(), eb.size());
      for (size_t i = 0; i < n; ++i) {
        const std::string p = path + "[" + std::to_string(i + 1) + "]";
        if (i >= ea.size()) {
          out.push_back({p, "<absent>", eb[i].ToString()});
        } else if (i >= eb.size()) {
          out.push_back({p, ea[i].ToString(), "<absent>"});
        } else {
          DiffInto(p, ea[i], eb[i], out);
        }
      }
      return;
    }
    default:
      out.push_back({path, a.ToString(), b.ToString()});
      return;
  }
}

}  // namespace

std::vector<ValueDiffEntry> ValueDiff(const Value& a, const Value& b) {
  std::vector<ValueDiffEntry> out;
  DiffInto("", a, b, out);
  return out;
}

}  // namespace sandtable
