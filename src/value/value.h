// An immutable, structurally shared TLA+-like value model.
//
// Specification states are built from these values: booleans, integers,
// strings, model values (symmetry-class constants such as server identities),
// sequences, sets, records, and finite functions (maps). Values are
// persistent: "updates" produce new values sharing unchanged substructure,
// which keeps BFS frontiers compact and makes functional-style action
// definitions cheap.
//
// Values have a stable total order and a memoized structural hash; sets and
// functions are kept in canonical (sorted, deduplicated) form so equal values
// always have equal representations and fingerprints.
#ifndef SANDTABLE_SRC_VALUE_VALUE_H_
#define SANDTABLE_SRC_VALUE_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/json.h"
#include "src/util/result.h"

namespace sandtable {

enum class ValueKind : uint8_t {
  kBool = 0,
  kInt = 1,
  kString = 2,
  kModel = 3,   // a named constant belonging to a symmetry class, e.g. Server n1
  kSeq = 4,     // ordered sequence  <<a, b, c>>
  kSet = 5,     // canonical sorted set  {a, b, c}
  kRecord = 6,  // fields sorted by name  [x |-> 1, y |-> 2]
  kFun = 7,     // finite function sorted by key  (k1 :> v1 @@ k2 :> v2)
};

class Value {
 public:
  using Field = std::pair<std::string, Value>;
  using Pair = std::pair<Value, Value>;

  // Default-constructed value is the integer 0; having a default constructor
  // makes Value usable in standard containers.
  Value();

  // ---- Constructors -------------------------------------------------------
  static Value Bool(bool b);
  static Value Int(int64_t i);
  static Value Str(std::string s);
  // Model value: `cls` names the symmetry class ("Server"), `index` the member.
  static Value Model(std::string cls, int index);
  static Value Seq(std::vector<Value> elems);
  static Value EmptySeq();
  // Sorts and deduplicates.
  static Value Set(std::vector<Value> elems);
  static Value EmptySet();
  // Sorts fields by name; field names must be unique.
  static Value Record(std::vector<Field> fields);
  // Sorts pairs by key; keys must be unique.
  static Value Fun(std::vector<Pair> pairs);
  static Value EmptyFun();

  // ---- Inspection ---------------------------------------------------------
  ValueKind kind() const;
  bool is(ValueKind k) const { return kind() == k; }

  bool bool_v() const;
  int64_t int_v() const;
  const std::string& str_v() const;
  const std::string& model_class() const;
  int model_index() const;

  // Sequence/set element list (CHECKs kind).
  const std::vector<Value>& elems() const;
  // Record fields (CHECKs kind).
  const std::vector<Field>& record_fields() const;
  // Function pairs (CHECKs kind).
  const std::vector<Pair>& fun_pairs() const;

  // Number of elements/fields/pairs; 0 for scalars.
  size_t size() const;
  bool empty() const { return size() == 0; }

  // ---- Record operations ---------------------------------------------------
  bool has_field(std::string_view name) const;
  const Value& field(std::string_view name) const;           // CHECKs presence
  Value WithField(std::string_view name, Value v) const;     // functional update/insert
  Value WithoutField(std::string_view name) const;

  // ---- Sequence operations -------------------------------------------------
  const Value& at(size_t index) const;  // 0-based
  Value Append(Value v) const;
  Value Head() const;     // first element (CHECKs non-empty)
  Value Tail() const;     // all but first
  Value DropLast() const; // all but last
  // 1-based inclusive TLA-style SubSeq; out-of-range clamps to valid range.
  Value SubSeq(size_t from1, size_t to1) const;
  Value SeqSet(size_t index, Value v) const;  // 0-based replace

  // ---- Set operations --------------------------------------------------------
  bool Contains(const Value& v) const;  // set membership (CHECKs kind)
  Value SetAdd(Value v) const;
  Value SetRemove(const Value& v) const;
  Value SetUnion(const Value& other) const;

  // ---- Function operations ---------------------------------------------------
  bool FunHas(const Value& key) const;
  const Value& Apply(const Value& key) const;      // CHECKs presence
  Value FunSet(const Value& key, Value v) const;   // update/insert
  Value FunRemove(const Value& key) const;

  // ---- Identity -------------------------------------------------------------
  // Memoized structural hash. Thread-safe: concurrent first calls on a shared
  // node may recompute the (deterministic) hash, then publish it atomically.
  uint64_t hash() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  // ---- Rendering / serialization ---------------------------------------------
  // TLA+-flavoured rendering, e.g. [term |-> 2, log |-> <<[v |-> 1]>>].
  std::string ToString() const;
  Json ToJson() const;
  static Result<Value> FromJson(const Json& j);

  // ---- Symmetry ----------------------------------------------------------------
  // Replace every model value of class `cls` and index i with index perm[i].
  Value PermuteModel(const std::string& cls, const std::vector<int>& perm) const;

  // Structural hash of the value *as if* PermuteModel(cls, perm) had been
  // applied, computed in one traversal without materializing the permuted
  // value. Sets and functions are combined in sorted-hash order so the result
  // does not depend on how the permutation reorders canonical storage.
  // Minimizing this over all permutations yields a symmetry-invariant
  // fingerprint (see mc/expand.cc); it is not comparable with hash().
  uint64_t HashPermuted(const std::string& cls, const std::vector<int>& perm) const;

  // Minimum of HashPermuted over `perms`, with per-node memoization: because
  // values share structure, successor states only re-traverse the sub-values
  // an action actually changed. The cache is keyed by a global symmetry
  // context (cls, perms.size()); switching contexts invalidates it.
  //
  // Thread-safe for concurrent calls under ONE symmetry context (the parallel
  // checker's workers all explore the same spec): cache entries are published
  // atomically and racing fill-ins recompute the same value. Runs over specs
  // with different symmetry declarations must not overlap in time.
  uint64_t SymmetricMinHash(const std::string& cls,
                            const std::vector<std::vector<int>>& perms) const;

  // Implementation node; defined in value.cc. Public so internal helpers can
  // allocate and traverse nodes, but opaque to all other code (the definition
  // is local to value.cc).
  struct Node;
  const Node& node() const { return *node_; }

 private:
  explicit Value(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

// Three-way comparison defining the global total order on values:
// first by kind, then by content.
int Compare(const Value& a, const Value& b);

// A single structural difference between two values.
struct ValueDiffEntry {
  std::string path;  // e.g. "currentTerm[n1]" or "log[n2][3].term"
  std::string lhs;   // rendering of the left value at `path` ("<absent>" if missing)
  std::string rhs;
};

// Structural diff of `a` vs `b`; empty result iff a == b.
std::vector<ValueDiffEntry> ValueDiff(const Value& a, const Value& b);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_VALUE_VALUE_H_
