#include "src/value/value_codec.h"

#include <utility>

namespace sandtable {

void AppendVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void AppendZigzag(std::string& out, int64_t v) {
  AppendVarint(out, (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
}

bool ByteReader::ReadVarint(uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  const char* p = p_;
  while (p != end_ && shift < 64) {
    const uint8_t byte = static_cast<uint8_t>(*p++);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      p_ = p;
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated or over-long
}

bool ByteReader::ReadZigzag(int64_t* v) {
  uint64_t raw;
  if (!ReadVarint(&raw)) {
    return false;
  }
  *v = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  return true;
}

bool ByteReader::ReadBytes(size_t n, std::string_view* out) {
  if (remaining() < n) {
    return false;
  }
  *out = std::string_view(p_, n);
  p_ += n;
  return true;
}

bool ByteReader::ReadByte(uint8_t* b) {
  if (p_ == end_) {
    return false;
  }
  *b = static_cast<uint8_t>(*p_++);
  return true;
}

uint32_t ValueEncoder::Intern(const std::string& s) {
  auto [it, inserted] = index_.emplace(s, static_cast<uint32_t>(strings_.size()));
  if (inserted) {
    strings_.push_back(&it->first);
  }
  return it->second;
}

void ValueEncoder::Encode(const Value& v, std::string& out) {
  out.push_back(static_cast<char>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kBool:
      AppendVarint(out, v.bool_v() ? 1 : 0);
      break;
    case ValueKind::kInt:
      AppendZigzag(out, v.int_v());
      break;
    case ValueKind::kString:
      AppendVarint(out, Intern(v.str_v()));
      break;
    case ValueKind::kModel:
      AppendVarint(out, Intern(v.model_class()));
      AppendVarint(out, static_cast<uint64_t>(v.model_index()));
      break;
    case ValueKind::kSeq:
    case ValueKind::kSet:
      AppendVarint(out, v.elems().size());
      for (const Value& e : v.elems()) {
        Encode(e, out);
      }
      break;
    case ValueKind::kRecord:
      AppendVarint(out, v.record_fields().size());
      for (const auto& [name, field] : v.record_fields()) {
        AppendVarint(out, Intern(name));
        Encode(field, out);
      }
      break;
    case ValueKind::kFun:
      AppendVarint(out, v.fun_pairs().size());
      for (const auto& [key, val] : v.fun_pairs()) {
        Encode(key, out);
        Encode(val, out);
      }
      break;
  }
}

void ValueEncoder::WriteStringTable(std::string& out) const {
  AppendVarint(out, strings_.size());
  for (const std::string* s : strings_) {
    AppendVarint(out, s->size());
    out.append(*s);
  }
}

Result<ValueDecoder> ValueDecoder::FromStringTable(ByteReader& in) {
  uint64_t count;
  if (!in.ReadVarint(&count)) {
    return Result<ValueDecoder>::Error("codec: truncated string table count");
  }
  if (count > in.remaining()) {  // each string needs at least its length byte
    return Result<ValueDecoder>::Error("codec: string table count exceeds input");
  }
  ValueDecoder d;
  d.strings_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t len;
    std::string_view bytes;
    if (!in.ReadVarint(&len) || !in.ReadBytes(len, &bytes)) {
      return Result<ValueDecoder>::Error("codec: truncated string table entry");
    }
    d.strings_.emplace_back(bytes);
  }
  return d;
}

Result<Value> ValueDecoder::Decode(ByteReader& in) const {
  uint8_t tag;
  if (!in.ReadByte(&tag)) {
    return Result<Value>::Error("codec: truncated value tag");
  }
  if (tag > static_cast<uint8_t>(ValueKind::kFun)) {
    return Result<Value>::Error("codec: unknown value tag " + std::to_string(tag));
  }
  const auto kind = static_cast<ValueKind>(tag);
  auto read_string = [&](std::string* out) -> bool {
    uint64_t idx;
    if (!in.ReadVarint(&idx) || idx >= strings_.size()) {
      return false;
    }
    *out = strings_[idx];
    return true;
  };
  switch (kind) {
    case ValueKind::kBool: {
      uint64_t b;
      if (!in.ReadVarint(&b)) {
        return Result<Value>::Error("codec: truncated bool");
      }
      return Value::Bool(b != 0);
    }
    case ValueKind::kInt: {
      int64_t i;
      if (!in.ReadZigzag(&i)) {
        return Result<Value>::Error("codec: truncated int");
      }
      return Value::Int(i);
    }
    case ValueKind::kString: {
      std::string s;
      if (!read_string(&s)) {
        return Result<Value>::Error("codec: bad string index");
      }
      return Value::Str(std::move(s));
    }
    case ValueKind::kModel: {
      std::string cls;
      uint64_t index;
      if (!read_string(&cls) || !in.ReadVarint(&index)) {
        return Result<Value>::Error("codec: truncated model value");
      }
      return Value::Model(std::move(cls), static_cast<int>(index));
    }
    case ValueKind::kSeq:
    case ValueKind::kSet: {
      uint64_t count;
      if (!in.ReadVarint(&count) || count > in.remaining()) {
        return Result<Value>::Error("codec: bad element count");
      }
      std::vector<Value> elems;
      elems.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        auto e = Decode(in);
        if (!e.ok()) {
          return e;
        }
        elems.push_back(std::move(e).value());
      }
      return kind == ValueKind::kSeq ? Value::Seq(std::move(elems))
                                     : Value::Set(std::move(elems));
    }
    case ValueKind::kRecord: {
      uint64_t count;
      if (!in.ReadVarint(&count) || count > in.remaining()) {
        return Result<Value>::Error("codec: bad field count");
      }
      std::vector<Value::Field> fields;
      fields.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        std::string name;
        if (!read_string(&name)) {
          return Result<Value>::Error("codec: bad field name index");
        }
        auto v = Decode(in);
        if (!v.ok()) {
          return v;
        }
        fields.emplace_back(std::move(name), std::move(v).value());
      }
      return Value::Record(std::move(fields));
    }
    case ValueKind::kFun: {
      uint64_t count;
      if (!in.ReadVarint(&count) || count > in.remaining()) {
        return Result<Value>::Error("codec: bad pair count");
      }
      std::vector<Value::Pair> pairs;
      pairs.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        auto k = Decode(in);
        if (!k.ok()) {
          return k;
        }
        auto v = Decode(in);
        if (!v.ok()) {
          return v;
        }
        pairs.emplace_back(std::move(k).value(), std::move(v).value());
      }
      return Value::Fun(std::move(pairs));
    }
  }
  return Result<Value>::Error("codec: unreachable tag");
}

std::string EncodeValueBlock(const Value& v) {
  ValueEncoder enc;
  std::string body;
  enc.Encode(v, body);
  std::string out;
  enc.WriteStringTable(out);
  out.append(body);
  return out;
}

Result<Value> DecodeValueBlock(std::string_view bytes) {
  ByteReader in(bytes);
  auto dec = ValueDecoder::FromStringTable(in);
  if (!dec.ok()) {
    return Result<Value>::Error(dec.error());
  }
  return dec.value().Decode(in);
}

}  // namespace sandtable
