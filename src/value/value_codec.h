// Compact binary codec for Value trees (the out-of-core frontier encoding).
//
// JSON serialization (Value::ToJson) is convenient for trace files but costs
// 5-10x the bytes of the information content, which matters once frontier
// queues overflow to disk. This codec writes a length-delimited binary form:
// LEB128 varints for all integers (zigzag for signed), one tag byte per node,
// and a per-block string table so repeated field names, string values and
// model-class names are written once and referenced by index thereafter.
//
// Layout of one encoded value (tag byte, then payload):
//   kBool    varint 0|1
//   kInt     zigzag varint
//   kString  varint string-table index
//   kModel   varint class index (string table) + varint member index
//   kSeq     varint count + elements
//   kSet     varint count + elements (canonical sorted order)
//   kRecord  varint count + (varint name index, value)*
//   kFun     varint count + (key value, value)*
//
// A self-contained block is [string table][value...]; the table is
//   varint count, then per string: varint length + bytes.
//
// Decoding rebuilds values through the canonicalizing constructors, so a
// decoded value is structurally identical to the original: equal, same
// memoized hash, and therefore the same exploration fingerprint.
#ifndef SANDTABLE_SRC_VALUE_VALUE_CODEC_H_
#define SANDTABLE_SRC_VALUE_VALUE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/result.h"
#include "src/value/value.h"

namespace sandtable {

// ---- Varint primitives (LEB128) -------------------------------------------

void AppendVarint(std::string& out, uint64_t v);
void AppendZigzag(std::string& out, int64_t v);

// Sequential reader over an encoded byte range. All Read* methods return
// false (without advancing past the end) on truncated input.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  bool ReadVarint(uint64_t* v);
  bool ReadZigzag(int64_t* v);
  bool ReadBytes(size_t n, std::string_view* out);
  bool ReadByte(uint8_t* b);

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
};

// ---- Encoder / decoder -----------------------------------------------------

// Accumulates a string table across any number of Encode calls; the table must
// be written into the same block the encoded values live in (WriteStringTable
// before the values — indices only grow, so earlier encodings stay valid).
class ValueEncoder {
 public:
  uint32_t Intern(const std::string& s);
  void Encode(const Value& v, std::string& out);
  // varint count, then per string varint length + bytes.
  void WriteStringTable(std::string& out) const;
  size_t table_size() const { return strings_.size(); }

 private:
  std::vector<const std::string*> strings_;
  std::unordered_map<std::string, uint32_t> index_;
};

class ValueDecoder {
 public:
  // Consume a string table from `in` (as written by WriteStringTable).
  static Result<ValueDecoder> FromStringTable(ByteReader& in);

  Result<Value> Decode(ByteReader& in) const;

 private:
  std::vector<std::string> strings_;
};

// Self-contained single-value block: [string table][value].
std::string EncodeValueBlock(const Value& v);
Result<Value> DecodeValueBlock(std::string_view bytes);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_VALUE_VALUE_CODEC_H_
