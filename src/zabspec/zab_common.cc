#include "src/zabspec/zab_common.h"

#include "src/util/check.h"

namespace sandtable {
namespace zabspec {

Value Zxid(int64_t epoch, int64_t counter) {
  return Value::Record({{"epoch", Value::Int(epoch)}, {"counter", Value::Int(counter)}});
}

Value ZeroZxid() { return Zxid(0, 0); }

int CompareZxid(const Value& a, const Value& b) {
  const int64_t ea = a.field("epoch").int_v();
  const int64_t eb = b.field("epoch").int_v();
  if (ea != eb) {
    return ea < eb ? -1 : 1;
  }
  const int64_t ca = a.field("counter").int_v();
  const int64_t cb = b.field("counter").int_v();
  if (ca != cb) {
    return ca < cb ? -1 : 1;
  }
  return 0;
}

Value MakeVote(const Value& leader, const Value& zxid) {
  return Value::Record({{"leader", leader}, {"zxid", zxid}});
}

bool VoteBetter(const Value& new_vote, int64_t new_round, const Value& cur_vote,
                int64_t cur_round, bool total_order_bug) {
  const int zxid_cmp = CompareZxid(new_vote.field("zxid"), cur_vote.field("zxid"));
  const int id_new = new_vote.field("leader").model_index();
  const int id_cur = cur_vote.field("leader").model_index();
  if (total_order_bug) {
    // ZooKeeper#1: the round-equality guard is missing from the zxid clause,
    // so a notification from an older round with a larger zxid also wins —
    // cross-round comparisons mix criteria and the relation stops being
    // antisymmetric. Triggering it requires a zxid inversion against the
    // round order, i.e. a full reign (election, discovery, synchronization,
    // broadcast) followed by fresh elections.
    return new_round > cur_round || zxid_cmp > 0 ||
           (new_round == cur_round && zxid_cmp == 0 && id_new > id_cur);
  }
  if (new_round != cur_round) {
    return new_round > cur_round;
  }
  if (zxid_cmp != 0) {
    return zxid_cmp > 0;
  }
  return id_new > id_cur;
}

Value NodeV(int i) { return Value::Model(kServerClass, i); }

const Value& Role(const State& s, const Value& node) { return s.field(kVarRole).Apply(node); }

int64_t Round(const State& s, const Value& node) {
  return s.field(kVarRound).Apply(node).int_v();
}

const Value& Vote(const State& s, const Value& node) { return s.field(kVarVote).Apply(node); }

int64_t AcceptedEpoch(const State& s, const Value& node) {
  return s.field(kVarAcceptedEpoch).Apply(node).int_v();
}

const Value& History(const State& s, const Value& node) {
  return s.field(kVarHistory).Apply(node);
}

int64_t LastCommitted(const State& s, const Value& node) {
  return s.field(kVarLastCommitted).Apply(node).int_v();
}

bool IsCrashed(const State& s, const Value& node) {
  return Role(s, node).str_v() == kRoleCrashed;
}

Value CrashedSet(const State& s, int num_servers) {
  std::vector<Value> crashed;
  for (int i = 0; i < num_servers; ++i) {
    Value node = NodeV(i);
    if (IsCrashed(s, node)) {
      crashed.push_back(std::move(node));
    }
  }
  return Value::Set(std::move(crashed));
}

Value LastZxid(const State& s, const Value& node) {
  const Value& history = History(s, node);
  if (history.empty()) {
    return ZeroZxid();
  }
  return history.at(history.size() - 1).field("zxid");
}

int QuorumSize(int num_servers) { return num_servers / 2 + 1; }

int64_t Counter(const State& s, const char* name) {
  return s.field(kVarCounters).field(name).int_v();
}

State BumpCounter(const State& s, const char* name) {
  const Value& counters = s.field(kVarCounters);
  return s.WithField(kVarCounters,
                     counters.WithField(name, Value::Int(counters.field(name).int_v() + 1)));
}

}  // namespace zabspec
}  // namespace sandtable
