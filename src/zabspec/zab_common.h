// Shared vocabulary of the Zab (ZooKeeper Atomic Broadcast) specification and
// implementation: variable names, roles, message types, zxid and vote
// helpers. The model covers the three Zab phases the paper exercises for
// ZooKeeper#1: fast leader election (notifications), discovery +
// synchronization (FOLLOWERINFO / SYNC / ACKLD / UPTODATE), and broadcast
// (PROPOSAL / ACK / COMMIT).
#ifndef SANDTABLE_SRC_ZABSPEC_ZAB_COMMON_H_
#define SANDTABLE_SRC_ZABSPEC_ZAB_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/spec/spec.h"
#include "src/value/value.h"

namespace sandtable {
namespace zabspec {

// Spec variable names.
inline constexpr const char* kVarRole = "role";
inline constexpr const char* kVarRound = "logicalClock";     // election round
inline constexpr const char* kVarVote = "vote";              // [leader, zxid]
inline constexpr const char* kVarRecvVotes = "recvVotes";    // voter -> [vote, round, state]
inline constexpr const char* kVarAcceptedEpoch = "acceptedEpoch";
inline constexpr const char* kVarHistory = "history";        // <<[zxid, val]>>
inline constexpr const char* kVarLastCommitted = "lastCommitted";  // committed prefix length
inline constexpr const char* kVarFollowers = "followers";    // leader's synced quorum
inline constexpr const char* kVarAcks = "acks";              // counter -> set of ackers
inline constexpr const char* kVarEstablished = "established";
inline constexpr const char* kVarNet = "net";
inline constexpr const char* kVarCounters = "counters";

// Roles.
inline constexpr const char* kRoleLooking = "Looking";
inline constexpr const char* kRoleFollowing = "Following";
inline constexpr const char* kRoleLeading = "Leading";
inline constexpr const char* kRoleCrashed = "Crashed";

// Message types.
inline constexpr const char* kMsgNotification = "NOTIFICATION";
inline constexpr const char* kMsgFollowerInfo = "FOLLOWERINFO";
inline constexpr const char* kMsgSync = "SYNC";
inline constexpr const char* kMsgAckLeader = "ACKLD";
inline constexpr const char* kMsgUpToDate = "UPTODATE";
inline constexpr const char* kMsgProposal = "PROPOSAL";
inline constexpr const char* kMsgAck = "ACK";
inline constexpr const char* kMsgCommit = "COMMIT";

inline constexpr const char* kServerClass = "n";

// zxid = [epoch |-> e, counter |-> c], ordered lexicographically by (e, c).
Value Zxid(int64_t epoch, int64_t counter);
int CompareZxid(const Value& a, const Value& b);
Value ZeroZxid();

// A vote: [leader |-> node, zxid |-> last zxid of the proposed leader].
Value MakeVote(const Value& leader, const Value& zxid);

// The fast-leader-election total order on (vote, round) pairs: is the new
// (vote n, round nr) strictly better than the current (vote c, round cr)?
//
// Correct:  nr > cr, else nr == cr and (zxid, leader id) lexicographic.
// Buggy (ZooKeeper#1, ZOOKEEPER-1419): the round-equality conjunct is lost on
// the zxid clause, so a notification from an older round with a larger zxid
// also wins — the relation stops being antisymmetric and elections never
// settle.
bool VoteBetter(const Value& new_vote, int64_t new_round, const Value& cur_vote,
                int64_t cur_round, bool total_order_bug);

// Node-local accessors over the spec state.
Value NodeV(int i);
const Value& Role(const State& s, const Value& node);
int64_t Round(const State& s, const Value& node);
const Value& Vote(const State& s, const Value& node);
int64_t AcceptedEpoch(const State& s, const Value& node);
const Value& History(const State& s, const Value& node);
int64_t LastCommitted(const State& s, const Value& node);
bool IsCrashed(const State& s, const Value& node);
Value CrashedSet(const State& s, int num_servers);

// The last zxid in a node's history (ZeroZxid when empty).
Value LastZxid(const State& s, const Value& node);

int QuorumSize(int num_servers);

int64_t Counter(const State& s, const char* name);
State BumpCounter(const State& s, const char* name);

}  // namespace zabspec
}  // namespace sandtable

#endif  // SANDTABLE_SRC_ZABSPEC_ZAB_COMMON_H_
