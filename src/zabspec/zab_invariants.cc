// Safety properties of the Zab specification. The headline oracle is the
// vote total-order property violated by ZooKeeper#1 (ZOOKEEPER-1419): the
// fast-leader-election comparison must be a strict total order, otherwise
// elections never settle or produce multiple valid leaders.
#include <algorithm>

#include "src/net/specnet.h"
#include "src/zabspec/zab_common.h"
#include "src/zabspec/zab_spec.h"

namespace sandtable {

using namespace zabspec;  // NOLINT(build/namespaces): spec vocabulary

namespace {

// The (vote, round) pairs currently held by LOOKING servers, plus those
// circulating in notifications, must be totally ordered by the election
// comparator: for any two distinct pairs exactly one direction wins, and a
// pair never beats itself.
bool VotesTotallyOrdered(const State& s, int n, bool bug) {
  struct Pair {
    Value vote;
    int64_t round;
  };
  std::vector<Pair> pairs;
  for (int i = 0; i < n; ++i) {
    const Value node = NodeV(i);
    if (Role(s, node).str_v() == kRoleLooking) {
      pairs.push_back({Vote(s, node), Round(s, node)});
    }
  }
  for (const Value& msg : specnet::AllMessages(s.field(kVarNet))) {
    if (msg.field("mtype").str_v() == kMsgNotification) {
      pairs.push_back({msg.field("vote"), msg.field("round").int_v()});
    }
  }
  for (size_t a = 0; a < pairs.size(); ++a) {
    if (VoteBetter(pairs[a].vote, pairs[a].round, pairs[a].vote, pairs[a].round, bug)) {
      return false;  // irreflexivity violated
    }
    for (size_t b = a + 1; b < pairs.size(); ++b) {
      const bool ab = VoteBetter(pairs[a].vote, pairs[a].round, pairs[b].vote,
                                 pairs[b].round, bug);
      const bool ba = VoteBetter(pairs[b].vote, pairs[b].round, pairs[a].vote,
                                 pairs[a].round, bug);
      if (ab && ba) {
        return false;  // antisymmetry violated: comparison is not total order
      }
    }
  }
  return true;
}

bool AtMostOneEstablishedLeaderPerEpoch(const State& s, int n) {
  for (int a = 0; a < n; ++a) {
    const Value na = NodeV(a);
    if (Role(s, na).str_v() != kRoleLeading || !s.field(kVarEstablished).Apply(na).bool_v()) {
      continue;
    }
    for (int b = a + 1; b < n; ++b) {
      const Value nb = NodeV(b);
      if (Role(s, nb).str_v() == kRoleLeading &&
          s.field(kVarEstablished).Apply(nb).bool_v() &&
          AcceptedEpoch(s, na) == AcceptedEpoch(s, nb)) {
        return false;
      }
    }
  }
  return true;
}

// Committed transaction prefixes agree pairwise (zxid and value).
bool CommittedPrefixConsistent(const State& s, int n) {
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const Value na = NodeV(a);
      const Value nb = NodeV(b);
      const int64_t common = std::min(LastCommitted(s, na), LastCommitted(s, nb));
      for (int64_t i = 0; i < common; ++i) {
        if (!(History(s, na).at(static_cast<size_t>(i)) ==
              History(s, nb).at(static_cast<size_t>(i)))) {
          return false;
        }
      }
    }
  }
  return true;
}

bool LastCommittedWithinHistory(const State& s, int n) {
  for (int i = 0; i < n; ++i) {
    const Value node = NodeV(i);
    const int64_t committed = LastCommitted(s, node);
    if (committed < 0 || committed > static_cast<int64_t>(History(s, node).size())) {
      return false;
    }
  }
  return true;
}

bool HistoryZxidsIncreasing(const State& s, int n) {
  for (int i = 0; i < n; ++i) {
    const Value& history = History(s, NodeV(i));
    for (size_t k = 1; k < history.size(); ++k) {
      if (CompareZxid(history.at(k - 1).field("zxid"), history.at(k).field("zxid")) >= 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

void AddZabInvariants(Spec& spec, const ZabProfile& profile) {
  const int n = profile.num_servers;
  const bool bug = profile.bugs.zk1_vote_order;

  spec.invariants.push_back({"VotesTotallyOrdered", [n, bug](const State& s) {
                               return VotesTotallyOrdered(s, n, bug);
                             }});
  spec.invariants.push_back({"AtMostOneEstablishedLeaderPerEpoch", [n](const State& s) {
                               return AtMostOneEstablishedLeaderPerEpoch(s, n);
                             }});
  spec.invariants.push_back({"CommittedPrefixConsistent", [n](const State& s) {
                               return CommittedPrefixConsistent(s, n);
                             }});
  spec.invariants.push_back({"LastCommittedWithinHistory", [n](const State& s) {
                               return LastCommittedWithinHistory(s, n);
                             }});
  spec.invariants.push_back({"HistoryZxidsIncreasing", [n](const State& s) {
                               return HistoryZxidsIncreasing(s, n);
                             }});

  spec.transition_invariants.push_back(
      {"AcceptedEpochMonotonic",
       [n](const State& prev, const ActionLabel& label, const State& next) {
         for (int i = 0; i < n; ++i) {
           if (AcceptedEpoch(next, NodeV(i)) < AcceptedEpoch(prev, NodeV(i))) {
             return false;
           }
         }
         return true;
       }});

  spec.transition_invariants.push_back(
      {"LastCommittedMonotonic",
       [n](const State& prev, const ActionLabel& label, const State& next) {
         if (label.kind == EventKind::kCrash || label.kind == EventKind::kRestart) {
           return true;
         }
         for (int i = 0; i < n; ++i) {
           if (LastCommitted(next, NodeV(i)) < LastCommitted(prev, NodeV(i))) {
             return false;
           }
         }
         return true;
       }});
}

}  // namespace sandtable
