#include "src/zabspec/zab_spec.h"

#include <algorithm>
#include <memory>

#include "src/net/specnet.h"
#include "src/util/check.h"
#include "src/zabspec/zab_common.h"

namespace sandtable {

using namespace zabspec;  // NOLINT(build/namespaces): spec vocabulary

ZabProfile GetZabProfile(bool with_bugs) {
  ZabProfile p;
  p.bugs.zk1_vote_order = with_bugs;
  return p;
}

namespace {

struct Builder {
  ZabProfile p;
  int n;
  int quorum;
  std::vector<Value> nodes;

  explicit Builder(const ZabProfile& profile)
      : p(profile),
        n(profile.num_servers),
        quorum(QuorumSize(profile.num_servers)),
        nodes([&] {
          std::vector<Value> out;
          for (int i = 0; i < profile.num_servers; ++i) {
            out.push_back(NodeV(i));
          }
          return out;
        }()) {}

  static State Upd(const State& s, const char* var, const Value& node, Value v) {
    return s.WithField(var, s.field(var).FunSet(node, std::move(v)));
  }

  State WithNet(const State& s, Value net) const {
    return s.WithField(kVarNet, std::move(net));
  }

  State SendMsg(const State& s, const Value& msg) const {
    return WithNet(s, specnet::Send(s.field(kVarNet), msg, CrashedSet(s, n)));
  }

  // ---- Messages -------------------------------------------------------------

  static Value MsgBase(const char* type, const Value& src, const Value& dst) {
    return Value::Record({{"mtype", Value::Str(type)}, {"src", src}, {"dst", dst}});
  }

  static Value MsgNotification(const Value& src, const Value& dst, const Value& vote,
                               int64_t round, const std::string& state) {
    return MsgBase(kMsgNotification, src, dst)
        .WithField("vote", vote)
        .WithField("round", Value::Int(round))
        .WithField("state", Value::Str(state));
  }

  static Value MsgFollowerInfo(const Value& src, const Value& dst, int64_t accepted_epoch,
                               const Value& last_zxid) {
    return MsgBase(kMsgFollowerInfo, src, dst)
        .WithField("acceptedEpoch", Value::Int(accepted_epoch))
        .WithField("lastZxid", last_zxid);
  }

  static Value MsgSync(const Value& src, const Value& dst, int64_t epoch,
                       const std::string& mode, Value entries, int64_t last_committed) {
    return MsgBase(kMsgSync, src, dst)
        .WithField("epoch", Value::Int(epoch))
        .WithField("mode", Value::Str(mode))
        .WithField("entries", std::move(entries))
        .WithField("lastCommitted", Value::Int(last_committed));
  }

  static Value MsgAckLeader(const Value& src, const Value& dst, int64_t epoch) {
    return MsgBase(kMsgAckLeader, src, dst).WithField("epoch", Value::Int(epoch));
  }

  static Value MsgUpToDate(const Value& src, const Value& dst) {
    return MsgBase(kMsgUpToDate, src, dst);
  }

  static Value MsgProposal(const Value& src, const Value& dst, const Value& zxid,
                           int64_t val) {
    return MsgBase(kMsgProposal, src, dst)
        .WithField("zxid", zxid)
        .WithField("val", Value::Int(val));
  }

  static Value MsgAck(const Value& src, const Value& dst, const Value& zxid) {
    return MsgBase(kMsgAck, src, dst).WithField("zxid", zxid);
  }

  static Value MsgCommit(const Value& src, const Value& dst, const Value& zxid) {
    return MsgBase(kMsgCommit, src, dst).WithField("zxid", zxid);
  }

  // ---- Initial state -----------------------------------------------------------

  State InitState() const {
    std::vector<Value::Pair> role, round, vote, recv, epoch, history, committed, followers,
        acks, established;
    for (const Value& node : nodes) {
      role.emplace_back(node, Value::Str(kRoleLooking));
      round.emplace_back(node, Value::Int(0));
      vote.emplace_back(node, MakeVote(node, ZeroZxid()));
      recv.emplace_back(node, Value::EmptyFun());
      epoch.emplace_back(node, Value::Int(0));
      history.emplace_back(node, Value::EmptySeq());
      committed.emplace_back(node, Value::Int(0));
      followers.emplace_back(node, Value::EmptySet());
      acks.emplace_back(node, Value::EmptyFun());
      established.emplace_back(node, Value::Bool(false));
    }
    return Value::Record({
        {kVarRole, Value::Fun(std::move(role))},
        {kVarRound, Value::Fun(std::move(round))},
        {kVarVote, Value::Fun(std::move(vote))},
        {kVarRecvVotes, Value::Fun(std::move(recv))},
        {kVarAcceptedEpoch, Value::Fun(std::move(epoch))},
        {kVarHistory, Value::Fun(std::move(history))},
        {kVarLastCommitted, Value::Fun(std::move(committed))},
        {kVarFollowers, Value::Fun(std::move(followers))},
        {kVarAcks, Value::Fun(std::move(acks))},
        {kVarEstablished, Value::Fun(std::move(established))},
        {kVarNet, specnet::InitTcp()},
        {kVarCounters,
         Value::Record({{"timeouts", Value::Int(0)},
                        {"requests", Value::Int(0)},
                        {"crashes", Value::Int(0)},
                        {"restarts", Value::Int(0)},
                        {"partitions", Value::Int(0)}})},
    });
  }

  // ---- Election helpers ------------------------------------------------------------

  // Record the node's own (vote, round) in its receive set.
  State RecordOwnVote(const State& s, const Value& node) const {
    const Value entry = Value::Record(
        {{"vote", Vote(s, node)}, {"round", Value::Int(Round(s, node))}});
    return Upd(s, kVarRecvVotes, node,
               s.field(kVarRecvVotes).Apply(node).FunSet(node, entry));
  }

  State BroadcastNotification(const State& s, const Value& node) const {
    State t = s;
    for (const Value& peer : nodes) {
      if (peer == node) {
        continue;
      }
      t = SendMsg(t, MsgNotification(node, peer, Vote(t, node), Round(t, node),
                                     Role(t, node).str_v()));
    }
    return t;
  }

  // Reset volatile leadership bookkeeping.
  State ClearLeaderState(const State& s, const Value& node) const {
    State t = Upd(s, kVarFollowers, node, Value::EmptySet());
    t = Upd(t, kVarAcks, node, Value::EmptyFun());
    return Upd(t, kVarEstablished, node, Value::Bool(false));
  }

  // The node concluded an election in favour of itself: start leading and
  // propose the next epoch (discovery begins when FOLLOWERINFO arrives).
  State BecomeLeading(const State& s, const Value& node, ActionContext& ctx) const {
    ctx.Branch("become_leading");
    State t = s.WithField(kVarRole, s.field(kVarRole).FunSet(node, Value::Str(kRoleLeading)));
    t = ClearLeaderState(t, node);
    t = Upd(t, kVarAcceptedEpoch, node, Value::Int(AcceptedEpoch(t, node) + 1));
    return t;
  }

  // The node concluded an election in favour of `leader`: follow and send
  // FOLLOWERINFO to start discovery.
  State BecomeFollowing(const State& s, const Value& node, const Value& leader,
                        ActionContext& ctx) const {
    ctx.Branch("become_following");
    State t = Upd(s, kVarRole, node, Value::Str(kRoleFollowing));
    t = Upd(t, kVarVote, node, MakeVote(leader, LastZxid(t, node)));
    t = ClearLeaderState(t, node);
    return SendMsg(t, MsgFollowerInfo(node, leader, AcceptedEpoch(t, node),
                                      LastZxid(t, node)));
  }

  // Count supporters of the node's current proposal among received votes.
  bool HasElectionQuorum(const State& s, const Value& node) const {
    const Value& my_vote = Vote(s, node);
    const int64_t my_round = Round(s, node);
    const Value& recv = s.field(kVarRecvVotes).Apply(node);
    int support = 0;
    for (const auto& [voter, entry] : recv.fun_pairs()) {
      if (entry.field("round").int_v() == my_round &&
          entry.field("vote").field("leader") == my_vote.field("leader")) {
        ++support;
      }
    }
    return support >= quorum;
  }

  // Position (1-based) of `zxid` in the node's history; 0 when absent.
  static int64_t ZxidPosition(const Value& history, const Value& zxid) {
    for (size_t i = 0; i < history.size(); ++i) {
      if (CompareZxid(history.at(i).field("zxid"), zxid) == 0) {
        return static_cast<int64_t>(i) + 1;
      }
    }
    return 0;
  }

  static Json NodeParam(const Value& node) {
    return Json(static_cast<int64_t>(node.model_index()));
  }

  static Json MsgParams(const Value& msg) {
    JsonObject o;
    o["src"] = NodeParam(msg.field("src"));
    o["dst"] = NodeParam(msg.field("dst"));
    o["msg"] = msg.ToJson();
    return Json(std::move(o));
  }
};

using BP = std::shared_ptr<const Builder>;

// Election timeout: the node (re-)enters leader election with a fresh round.
Action TimeoutAction(const BP& b) {
  Action a;
  a.name = "Timeout";
  a.kind = EventKind::kTimeout;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "timeouts") >= b->p.budget.max_timeouts) {
      return;
    }
    for (const Value& node : b->nodes) {
      if (IsCrashed(s, node)) {
        continue;
      }
      if (Round(s, node) + 1 > b->p.budget.max_rounds) {
        continue;
      }
      ctx.Branch("enter_looking");
      State t = Builder::Upd(s, kVarRole, node, Value::Str(kRoleLooking));
      t = Builder::Upd(t, kVarRound, node, Value::Int(Round(s, node) + 1));
      t = Builder::Upd(t, kVarVote, node, MakeVote(node, LastZxid(t, node)));
      t = Builder::Upd(t, kVarRecvVotes, node, Value::EmptyFun());
      t = b->ClearLeaderState(t, node);
      t = b->RecordOwnVote(t, node);
      t = b->BroadcastNotification(t, node);
      t = BumpCounter(t, "timeouts");
      JsonObject params;
      params["node"] = Builder::NodeParam(node);
      ctx.Emit(std::move(t), Json(std::move(params)));
    }
  };
  return a;
}

// Fast leader election notification handling (the spec twin of Figure 3).
State HandleNotification(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& src = m.field("src");
  const Value& n_vote = m.field("vote");
  const int64_t n_round = m.field("round").int_v();
  const std::string& n_state = m.field("state").str_v();
  const bool bug = b.p.bugs.zk1_vote_order;

  if (Role(s, dst).str_v() != kRoleLooking) {
    // Figure 3, lines 18-21: an out-of-election server answers a LOOKING
    // sender with its current vote so the sender can join the regime.
    if (n_state == kRoleLooking) {
      ctx.Branch("answer_looking_sender");
      return b.SendMsg(s, Builder::MsgNotification(dst, src, Vote(s, dst), Round(s, dst),
                                                   Role(s, dst).str_v()));
    }
    ctx.Branch("ignored_not_looking");
    return s;
  }

  if (n_state != kRoleLooking) {
    // The sender claims an established regime; join it when the leader itself
    // confirms, otherwise wait for more evidence.
    if (n_state == kRoleLeading && n_vote.field("leader") == src) {
      ctx.Branch("join_established");
      return b.BecomeFollowing(s, dst, src, ctx);
    }
    ctx.Branch("regime_hint_ignored");
    return s;
  }

  const int64_t my_round = Round(s, dst);
  if (n_round > my_round) {
    // Newer election round: adopt it, restart vote collection, and re-propose
    // (the better of the incoming vote and our own credentials).
    ctx.Branch("newer_round");
    s = Builder::Upd(s, kVarRound, dst, Value::Int(n_round));
    s = Builder::Upd(s, kVarRecvVotes, dst, Value::EmptyFun());
    const Value self_vote = MakeVote(dst, LastZxid(s, dst));
    const Value adopted = VoteBetter(n_vote, n_round, self_vote, n_round, bug) ? n_vote
                                                                               : self_vote;
    s = Builder::Upd(s, kVarVote, dst, adopted);
    s = b.RecordOwnVote(s, dst);
    s = b.BroadcastNotification(s, dst);
  } else if (n_round < my_round) {
    if (bug && VoteBetter(n_vote, n_round, Vote(s, dst), my_round, bug)) {
      // ZooKeeper#1 behaviourally: the comparison lacks its round guard, so a
      // notification from an OLDER round whose zxid is larger wins and gets
      // adopted — the election never settles on one regime.
      ctx.Branch("stale_round_adopted[bug:zk1]");
      s = Builder::Upd(s, kVarVote, dst, n_vote);
      s = b.RecordOwnVote(s, dst);
      s = b.BroadcastNotification(s, dst);
    } else {
      // Figure 3, lines 12-16: a sender in an older round gets our (newer)
      // notification back and nothing else happens.
      ctx.Branch("stale_round_reply");
      return b.SendMsg(s, Builder::MsgNotification(dst, src, Vote(s, dst), my_round,
                                                   kRoleLooking));
    }
  } else if (n_round == my_round &&
             VoteBetter(n_vote, n_round, Vote(s, dst), my_round, bug)) {
    ctx.Branch("adopt_better_vote");
    s = Builder::Upd(s, kVarVote, dst, n_vote);
    s = b.RecordOwnVote(s, dst);
    s = b.BroadcastNotification(s, dst);
  } else {
    ctx.Branch("keep_vote");
  }

  // Record the sender's vote for this round.
  const Value entry = Value::Record({{"vote", n_vote}, {"round", Value::Int(n_round)}});
  s = Builder::Upd(s, kVarRecvVotes, dst,
                   s.field(kVarRecvVotes).Apply(dst).FunSet(src, entry));

  if (b.HasElectionQuorum(s, dst)) {
    const Value elected = Vote(s, dst).field("leader");
    if (elected == dst) {
      return b.BecomeLeading(s, dst, ctx);
    }
    return b.BecomeFollowing(s, dst, elected, ctx);
  }
  return s;
}

// Discovery: the leader learns the follower's accepted epoch and last zxid,
// settles the new epoch, and ships a DIFF or SNAP synchronization.
State HandleFollowerInfo(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");  // the leader
  const Value& src = m.field("src");
  if (Role(s, dst).str_v() != kRoleLeading) {
    ctx.Branch("followerinfo_ignored");
    return s;
  }
  const int64_t proposed = std::max(AcceptedEpoch(s, dst), m.field("acceptedEpoch").int_v() + 1);
  if (proposed > AcceptedEpoch(s, dst)) {
    ctx.Branch("bump_epoch");
    s = Builder::Upd(s, kVarAcceptedEpoch, dst, Value::Int(proposed));
  }
  const Value& history = History(s, dst);
  const Value& f_zxid = m.field("lastZxid");
  const int64_t pos = CompareZxid(f_zxid, ZeroZxid()) == 0
                          ? 0
                          : Builder::ZxidPosition(history, f_zxid);
  Value sync;
  if (CompareZxid(f_zxid, ZeroZxid()) == 0 || pos > 0) {
    // The follower's log is a prefix point of ours: send the missing suffix.
    ctx.Branch("sync_diff");
    sync = Builder::MsgSync(dst, src, AcceptedEpoch(s, dst), "DIFF",
                            history.SubSeq(static_cast<size_t>(pos) + 1, history.size()),
                            LastCommitted(s, dst));
  } else {
    // Unknown zxid: the follower's log diverged; ship a full snapshot.
    ctx.Branch("sync_snap");
    sync = Builder::MsgSync(dst, src, AcceptedEpoch(s, dst), "SNAP", history,
                            LastCommitted(s, dst));
  }
  return b.SendMsg(s, sync);
}

// Synchronization at the follower: install the leader's history and ack.
State HandleSync(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& src = m.field("src");
  const int64_t epoch = m.field("epoch").int_v();
  if (Role(s, dst).str_v() != kRoleFollowing || !(Vote(s, dst).field("leader") == src) ||
      epoch <= AcceptedEpoch(s, dst)) {
    ctx.Branch("sync_rejected");
    return s;
  }
  ctx.Branch(m.field("mode").str_v() == "DIFF" ? "install_diff" : "install_snap");
  s = Builder::Upd(s, kVarAcceptedEpoch, dst, Value::Int(epoch));
  Value history;
  if (m.field("mode").str_v() == "DIFF") {
    // The leader computed the diff against the lastZxid of our FOLLOWERINFO;
    // proposals broadcast since then may already be in our history, so only
    // entries past our current last zxid are appended.
    history = History(s, dst);
    for (const Value& entry : m.field("entries").elems()) {
      const Value last = history.empty() ? ZeroZxid()
                                         : history.at(history.size() - 1).field("zxid");
      if (CompareZxid(entry.field("zxid"), last) > 0) {
        history = history.Append(entry);
      }
    }
  } else {
    history = m.field("entries");
  }
  s = Builder::Upd(s, kVarHistory, dst, history);
  const int64_t committed =
      std::max(LastCommitted(s, dst),
               std::min(m.field("lastCommitted").int_v(), static_cast<int64_t>(history.size())));
  s = Builder::Upd(s, kVarLastCommitted, dst, Value::Int(committed));
  return b.SendMsg(s, Builder::MsgAckLeader(dst, src, epoch));
}

// The leader collects synchronization acks; a quorum establishes the reign.
State HandleAckLeader(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& src = m.field("src");
  if (Role(s, dst).str_v() != kRoleLeading ||
      m.field("epoch").int_v() != AcceptedEpoch(s, dst)) {
    ctx.Branch("ackld_ignored");
    return s;
  }
  const Value followers = s.field(kVarFollowers).Apply(dst).SetAdd(src);
  s = Builder::Upd(s, kVarFollowers, dst, followers);
  const bool was_established = s.field(kVarEstablished).Apply(dst).bool_v();
  if (static_cast<int>(followers.size()) + 1 >= b.quorum && !was_established) {
    ctx.Branch("established");
    s = Builder::Upd(s, kVarEstablished, dst, Value::Bool(true));
    for (const Value& f : followers.elems()) {
      s = b.SendMsg(s, Builder::MsgUpToDate(dst, f));
    }
  } else if (was_established) {
    ctx.Branch("late_follower");
    s = b.SendMsg(s, Builder::MsgUpToDate(dst, src));
  } else {
    ctx.Branch("ackld_counted");
  }
  return s;
}

State HandleUpToDate(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& src = m.field("src");
  if (Role(s, dst).str_v() != kRoleFollowing || !(Vote(s, dst).field("leader") == src)) {
    ctx.Branch("uptodate_ignored");
    return s;
  }
  ctx.Branch("serving");
  return Builder::Upd(s, kVarEstablished, dst, Value::Bool(true));
}

// Broadcast phase.
Action ClientRequestAction(const BP& b) {
  Action a;
  a.name = "ClientRequest";
  a.kind = EventKind::kClientRequest;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "requests") >= b->p.budget.max_client_requests) {
      return;
    }
    for (const Value& node : b->nodes) {
      if (Role(s, node).str_v() != kRoleLeading ||
          !s.field(kVarEstablished).Apply(node).bool_v()) {
        continue;
      }
      if (static_cast<int>(History(s, node).size()) >= b->p.budget.max_history) {
        continue;
      }
      const int64_t epoch = AcceptedEpoch(s, node);
      const Value last = LastZxid(s, node);
      const int64_t counter =
          last.field("epoch").int_v() == epoch ? last.field("counter").int_v() + 1 : 1;
      const Value zxid = Zxid(epoch, counter);
      for (int v = 1; v <= b->p.num_values; ++v) {
        ctx.Branch("propose");
        State t = Builder::Upd(
            s, kVarHistory, node,
            History(s, node).Append(
                Value::Record({{"zxid", zxid}, {"val", Value::Int(v)}})));
        t = Builder::Upd(t, kVarAcks, node,
                         t.field(kVarAcks).Apply(node).FunSet(zxid, Value::EmptySet()));
        for (const Value& f : t.field(kVarFollowers).Apply(node).elems()) {
          t = b->SendMsg(t, Builder::MsgProposal(node, f, zxid, v));
        }
        t = BumpCounter(t, "requests");
        JsonObject params;
        params["node"] = Builder::NodeParam(node);
        params["val"] = Json(static_cast<int64_t>(v));
        ctx.Emit(std::move(t), Json(std::move(params)));
      }
    }
  };
  return a;
}

State HandleProposal(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& src = m.field("src");
  if (Role(s, dst).str_v() != kRoleFollowing || !(Vote(s, dst).field("leader") == src)) {
    ctx.Branch("proposal_ignored");
    return s;
  }
  const Value& zxid = m.field("zxid");
  if (CompareZxid(zxid, LastZxid(s, dst)) <= 0) {
    ctx.Branch("proposal_stale");
    return s;
  }
  ctx.Branch("proposal_accepted");
  s = Builder::Upd(s, kVarHistory, dst,
                   History(s, dst).Append(Value::Record(
                       {{"zxid", zxid}, {"val", m.field("val")}})));
  return b.SendMsg(s, Builder::MsgAck(dst, src, zxid));
}

State HandleAck(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& src = m.field("src");
  const Value& zxid = m.field("zxid");
  if (Role(s, dst).str_v() != kRoleLeading || !s.field(kVarAcks).Apply(dst).FunHas(zxid)) {
    ctx.Branch("ack_ignored");
    return s;
  }
  const Value ackers = s.field(kVarAcks).Apply(dst).Apply(zxid).SetAdd(src);
  if (static_cast<int>(ackers.size()) + 1 >= b.quorum) {
    ctx.Branch("commit");
    // Commit: advance the committed prefix to this transaction and notify.
    const int64_t pos = Builder::ZxidPosition(History(s, dst), zxid);
    s = Builder::Upd(s, kVarLastCommitted, dst,
                     Value::Int(std::max(LastCommitted(s, dst), pos)));
    s = Builder::Upd(s, kVarAcks, dst, s.field(kVarAcks).Apply(dst).FunRemove(zxid));
    for (const Value& f : s.field(kVarFollowers).Apply(dst).elems()) {
      s = b.SendMsg(s, Builder::MsgCommit(dst, f, zxid));
    }
    return s;
  }
  ctx.Branch("ack_counted");
  return Builder::Upd(s, kVarAcks, dst, s.field(kVarAcks).Apply(dst).FunSet(zxid, ackers));
}

State HandleCommit(const Builder& b, State s, const Value& m, ActionContext& ctx) {
  const Value& dst = m.field("dst");
  const Value& zxid = m.field("zxid");
  const int64_t pos = Builder::ZxidPosition(History(s, dst), zxid);
  if (pos == 0) {
    ctx.Branch("commit_unknown_zxid");
    return s;
  }
  ctx.Branch("commit_applied");
  return Builder::Upd(s, kVarLastCommitted, dst,
                      Value::Int(std::max(LastCommitted(s, dst), pos)));
}

Action DeliveryAction(const BP& b, const char* name, const char* mtype,
                      std::function<State(const Builder&, State, const Value&, ActionContext&)>
                          handler) {
  Action a;
  a.name = name;
  a.kind = EventKind::kMessage;
  a.expand = [b, mtype, handler = std::move(handler)](const State& s, ActionContext& ctx) {
    const Value crashed = CrashedSet(s, b->n);
    for (specnet::Delivery& d : specnet::Deliveries(s.field(kVarNet), crashed)) {
      if (d.msg.field("mtype").str_v() != mtype) {
        continue;
      }
      State t = b->WithNet(s, std::move(d.net_after));
      t = handler(*b, std::move(t), d.msg, ctx);
      Json params = Builder::MsgParams(d.msg);
      if (d.from_delayed) {
        params["delayed"] = Json(true);
      }
      ctx.Emit(std::move(t), std::move(params));
    }
  };
  return a;
}

Action CrashAction(const BP& b) {
  Action a;
  a.name = "NodeCrash";
  a.kind = EventKind::kCrash;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "crashes") >= b->p.budget.max_crashes) {
      return;
    }
    int down = 0;
    for (const Value& node : b->nodes) {
      down += IsCrashed(s, node) ? 1 : 0;
    }
    if (down + 1 >= b->quorum) {
      return;
    }
    for (const Value& node : b->nodes) {
      if (IsCrashed(s, node)) {
        continue;
      }
      ctx.Branch("crash");
      State t = Builder::Upd(s, kVarRole, node, Value::Str(kRoleCrashed));
      t = Builder::Upd(t, kVarRound, node, Value::Int(0));
      t = Builder::Upd(t, kVarVote, node, MakeVote(node, LastZxid(s, node)));
      t = Builder::Upd(t, kVarRecvVotes, node, Value::EmptyFun());
      t = b->ClearLeaderState(t, node);
      t = b->WithNet(t, specnet::OnCrash(t.field(kVarNet), node));
      t = BumpCounter(t, "crashes");
      JsonObject params;
      params["node"] = Builder::NodeParam(node);
      ctx.Emit(std::move(t), Json(std::move(params)));
    }
  };
  return a;
}

Action RestartAction(const BP& b) {
  Action a;
  a.name = "NodeRestart";
  a.kind = EventKind::kRestart;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "restarts") >= b->p.budget.max_restarts) {
      return;
    }
    for (const Value& node : b->nodes) {
      if (!IsCrashed(s, node)) {
        continue;
      }
      ctx.Branch("restart");
      State t = Builder::Upd(s, kVarRole, node, Value::Str(kRoleLooking));
      t = BumpCounter(t, "restarts");
      JsonObject params;
      params["node"] = Builder::NodeParam(node);
      ctx.Emit(std::move(t), Json(std::move(params)));
    }
  };
  return a;
}

Action PartitionAction(const BP& b) {
  Action a;
  a.name = "PartitionStart";
  a.kind = EventKind::kPartition;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (Counter(s, "partitions") >= b->p.budget.max_partitions ||
        specnet::HasPartition(s.field(kVarNet))) {
      return;
    }
    const int total = 1 << b->n;
    for (int mask = 1; mask < total - 1; ++mask) {
      std::vector<Value> side;
      std::vector<Value> other;
      for (int i = 0; i < b->n; ++i) {
        ((mask >> i) & 1 ? side : other).push_back(b->nodes[static_cast<size_t>(i)]);
      }
      Value side_set = Value::Set(std::move(side));
      Value other_set = Value::Set(std::move(other));
      if (Compare(other_set, side_set) < 0) {
        continue;
      }
      ctx.Branch("partition");
      State t = b->WithNet(s, specnet::Partition(s.field(kVarNet), side_set));
      t = BumpCounter(t, "partitions");
      JsonArray ids;
      for (const Value& v : side_set.elems()) {
        ids.push_back(Json(static_cast<int64_t>(v.model_index())));
      }
      JsonObject params;
      params["side"] = Json(std::move(ids));
      ctx.Emit(std::move(t), Json(std::move(params)));
    }
  };
  return a;
}

Action HealAction(const BP& b) {
  Action a;
  a.name = "PartitionHeal";
  a.kind = EventKind::kRecover;
  a.expand = [b](const State& s, ActionContext& ctx) {
    if (!specnet::HasPartition(s.field(kVarNet))) {
      return;
    }
    ctx.Branch("heal");
    ctx.Emit(b->WithNet(s, specnet::Heal(s.field(kVarNet))), Json(JsonObject{}));
  };
  return a;
}

}  // namespace

void AddZabInvariants(Spec& spec, const ZabProfile& profile);

Spec MakeZabSpec(const ZabProfile& profile) {
  auto b = std::make_shared<const Builder>(profile);

  Spec spec;
  spec.name = "zab/zookeeper";
  spec.init_states.push_back(b->InitState());
  spec.symmetry = Symmetry{kServerClass, b->n};

  spec.actions.push_back(TimeoutAction(b));
  spec.actions.push_back(
      DeliveryAction(b, "HandleNotificationMsg", kMsgNotification, HandleNotification));
  spec.actions.push_back(
      DeliveryAction(b, "HandleFollowerInfoMsg", kMsgFollowerInfo, HandleFollowerInfo));
  spec.actions.push_back(DeliveryAction(b, "HandleSyncMsg", kMsgSync, HandleSync));
  spec.actions.push_back(
      DeliveryAction(b, "HandleAckLeaderMsg", kMsgAckLeader, HandleAckLeader));
  spec.actions.push_back(
      DeliveryAction(b, "HandleUpToDateMsg", kMsgUpToDate, HandleUpToDate));
  spec.actions.push_back(ClientRequestAction(b));
  spec.actions.push_back(DeliveryAction(b, "HandleProposalMsg", kMsgProposal, HandleProposal));
  spec.actions.push_back(DeliveryAction(b, "HandleAckMsg", kMsgAck, HandleAck));
  spec.actions.push_back(DeliveryAction(b, "HandleCommitMsg", kMsgCommit, HandleCommit));
  spec.actions.push_back(CrashAction(b));
  spec.actions.push_back(RestartAction(b));
  spec.actions.push_back(PartitionAction(b));
  spec.actions.push_back(HealAction(b));

  const ZabBudget budget = profile.budget;
  const int n = b->n;
  spec.constraint = [budget, n](const State& s) {
    if (Counter(s, "timeouts") > budget.max_timeouts ||
        Counter(s, "requests") > budget.max_client_requests ||
        Counter(s, "crashes") > budget.max_crashes ||
        Counter(s, "restarts") > budget.max_restarts ||
        Counter(s, "partitions") > budget.max_partitions) {
      return false;
    }
    if (specnet::MaxChannelLoad(s.field(kVarNet)) > budget.max_msg_buffer) {
      return false;
    }
    for (int i = 0; i < n; ++i) {
      const Value node = NodeV(i);
      if (Round(s, node) > budget.max_rounds ||
          AcceptedEpoch(s, node) > budget.max_epoch ||
          static_cast<int>(History(s, node).size()) > budget.max_history) {
        return false;
      }
    }
    return true;
  };

  spec.compared_vars = {kVarRole, kVarRound, kVarVote, kVarAcceptedEpoch,
                        kVarHistory, kVarLastCommitted, kVarNet};

  AddZabInvariants(spec, profile);
  return spec;
}

}  // namespace sandtable
