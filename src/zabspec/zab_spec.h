// The ZooKeeper / Zab specification (§4.2).
//
// Models the system behaviour of a ZooKeeper ensemble at SandTable's event
// granularity: fast leader election via notifications (Figure 3 is the
// corresponding implementation excerpt), a discovery + synchronization phase
// (FOLLOWERINFO / SYNC / ACKLD / UPTODATE), and the broadcast phase
// (PROPOSAL / ACK / COMMIT), over the reusable TCP network module with
// partitions, crashes and restarts.
#ifndef SANDTABLE_SRC_ZABSPEC_ZAB_SPEC_H_
#define SANDTABLE_SRC_ZABSPEC_ZAB_SPEC_H_

#include "src/spec/spec.h"

namespace sandtable {

struct ZabBugs {
  // ZooKeeper#1 (ZOOKEEPER-1419, v3.4.3): the fast-leader-election vote
  // comparison is not a total order; consequence: multiple valid leaders or
  // an election that never settles.
  bool zk1_vote_order = false;
};

struct ZabBudget {
  int max_timeouts = 3;
  int max_client_requests = 2;
  int max_crashes = 0;
  int max_restarts = 0;
  int max_partitions = 0;
  int max_rounds = 3;   // election rounds (logical clocks)
  int max_epoch = 3;
  int max_history = 3;  // transactions per node
  int max_msg_buffer = 6;
};

struct ZabProfile {
  std::string name = "zookeeper";
  int num_servers = 3;
  int num_values = 2;
  ZabBugs bugs;
  ZabBudget budget;
};

ZabProfile GetZabProfile(bool with_bugs);

Spec MakeZabSpec(const ZabProfile& profile);

}  // namespace sandtable

#endif  // SANDTABLE_SRC_ZABSPEC_ZAB_SPEC_H_
