// Analytics smoke test (label analytics-smoke): runs the real sandtable_cli
// on a small Raft profile with --analytics-out, asserts the text report's
// analytics section rendered, gates the produced profile document through
// bench_validate_json --analytics, and finally renders it with
// scripts/analytics_summary.py (skipped when python3 is unavailable).
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/util/json.h"

#ifndef SANDTABLE_CLI_BIN
#define SANDTABLE_CLI_BIN ""
#endif
#ifndef SANDTABLE_VALIDATOR_BIN
#define SANDTABLE_VALIDATOR_BIN ""
#endif
#ifndef SANDTABLE_ANALYTICS_SUMMARY_PY
#define SANDTABLE_ANALYTICS_SUMMARY_PY ""
#endif

namespace sandtable {
namespace {

int RunCmd(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string Slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(AnalyticsSmoke, CliProfileValidatesAndSummarizes) {
  const std::string dir = "/tmp/st-analytics-smoke-" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string profile = dir + "/check.analytics.json";
  const std::string report = dir + "/report.txt";

  // A few thousand states of pysyncobj finish in about a second and touch
  // every analytics dimension: multiple actions/kinds, branches, invariants,
  // duplicates and commuting deliveries.
  ASSERT_EQ(RunCmd(std::string(SANDTABLE_CLI_BIN) +
                   " check --system pysyncobj --states 2000 --report text"
                   " --analytics-out " + profile + " > " + report + " 2>&1"),
            0)
      << "cli failed; log at " << report;

  const std::string text = Slurp(report);
  EXPECT_NE(text.find("state-space analytics:"), std::string::npos) << text;
  EXPECT_NE(text.find("hot actions (by expand time):"), std::string::npos);
  EXPECT_NE(text.find("collision probability"), std::string::npos);

  ASSERT_EQ(RunCmd(std::string(SANDTABLE_VALIDATOR_BIN) + " " + profile +
                   " --analytics"),
            0);

  // The document is joinable with the run's report via run_id and carries the
  // per-action table the summary script renders.
  auto doc = Json::Parse(Slurp(profile));
  ASSERT_TRUE(doc.ok()) << doc.error();
  EXPECT_EQ(doc.value()["type"].as_string(), "analytics");
  EXPECT_EQ(doc.value()["engine"].as_string(), "bfs");
  EXPECT_FALSE(doc.value()["run_id"].as_string().empty());
  EXPECT_GT(doc.value()["actions"].size(), 0u);

  if (RunCmd("command -v python3 > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available; analytics_summary.py not exercised";
  }
  const std::string summary = dir + "/summary.txt";
  ASSERT_EQ(RunCmd("python3 " + std::string(SANDTABLE_ANALYTICS_SUMMARY_PY) +
                   " " + profile + " > " + summary + " 2>&1"),
            0)
      << "analytics_summary.py failed; output at " << summary;
  const std::string rendered = Slurp(summary);
  EXPECT_NE(rendered.find("hot actions"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("collision probability"), std::string::npos);

  // JSON mode parses too.
  EXPECT_EQ(RunCmd("python3 " + std::string(SANDTABLE_ANALYTICS_SUMMARY_PY) +
                   " --json " + profile + " > " + dir + "/summary.json 2>&1"),
            0);
}

}  // namespace
}  // namespace sandtable
