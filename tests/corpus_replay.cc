// Golden-trace regression driver: replays every checked-in minimized trace in
// tests/corpus/ against its bug's specification and asserts the expected
// violation fires. This turns the Table-2 verification-stage bug set into a
// sub-second regression suite — a model-checking hunt is only needed when a
// spec change legitimately breaks a trace (scripts/update_corpus.sh
// re-minimizes and diffs, making that an explicit review event).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/conformance/bug_catalog.h"
#include "src/mc/bfs.h"
#include "src/minimize/corpus.h"
#include "src/minimize/minimize.h"
#include "src/par/parallel_bfs.h"
#include "src/store/compact_store.h"
#include "src/trace/spec_replay.h"

namespace sandtable {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> files;
  const fs::path dir(SANDTABLE_CORPUS_DIR);
  if (fs::exists(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > 11 && name.substr(name.size() - 11) == ".trace.json") {
        files.push_back(entry.path().string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string TestName(const std::string& path) {
  std::string stem = fs::path(path).filename().string();
  stem = stem.substr(0, stem.size() - 11);  // drop ".trace.json"
  for (char& c : stem) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) {
      c = '_';
    }
  }
  return stem;
}

class CorpusReplay : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusReplay, ReproducesExpectedViolation) {
  auto golden = minimize::LoadGoldenTrace(GetParam());
  ASSERT_TRUE(golden.ok()) << golden.error();
  const minimize::GoldenTrace& g = golden.value();

  const conformance::BugInfo& bug = conformance::FindBug(g.bug);
  ASSERT_FALSE(bug.invariant.empty()) << g.bug << " is not a verification-stage bug";
  EXPECT_EQ(g.invariant, bug.invariant)
      << "corpus file disagrees with the catalog about the expected property";

  const Spec spec = conformance::MakeBugSpec(bug);
  const trace::SpecReplayResult r = minimize::ReplayGoldenTrace(spec, g);
  ASSERT_EQ(r.outcome, trace::SpecReplayOutcome::kViolation)
      << "golden trace no longer reproduces: " << trace::SpecReplayOutcomeName(r.outcome)
      << (r.stuck_reason.empty() ? "" : " (" + r.stuck_reason + ")")
      << " after " << r.steps_applied << "/" << g.events.size() << " events";
  EXPECT_EQ(r.invariant, g.invariant);
  EXPECT_EQ(r.is_transition_invariant, g.is_transition_invariant);
  // The violation fires exactly at the end — golden traces are minimized, so
  // a violation before the last event means the file is stale.
  EXPECT_EQ(r.steps_applied, g.events.size());
}

// Every verification-stage bug in the catalog must have a golden trace: a
// bug without one silently loses its regression coverage.
TEST(CorpusCompleteness, EveryVerificationBugHasAGoldenTrace) {
  const std::vector<std::string> files = CorpusFiles();
  for (const conformance::BugInfo& bug : conformance::BugCatalog()) {
    if (bug.invariant.empty()) {
      continue;  // conformance/modeling-stage: no spec-level counterexample
    }
    if (bug.id == "WRaft#2") {
      // Shares its seed and property with WRaft#1 (Figure 7: #1's trigger
      // requires #2's wrong message), so one golden trace covers both.
      continue;
    }
    const std::string want = minimize::CorpusSlug(bug.id) + ".trace.json";
    const bool found = std::any_of(files.begin(), files.end(), [&](const std::string& f) {
      return fs::path(f).filename().string() == want;
    });
    EXPECT_TRUE(found) << "missing golden trace " << want << " for " << bug.id;
  }
}

// Compacted-mode hunt against the corpus: the cheapest golden trace's bug is
// re-found by BFS over a hash-compacted (fingerprint-only) visited set, under
// the work-stealing scheduler, and the violation matches the golden file —
// same property, same minimal depth, with the trace rebuilt by re-search
// instead of parent chains. Pins that hash compaction changes memory cost,
// not model-checking results, on a real (non-toy) specification.
TEST(CorpusCompactedHunt, CheapestGoldenBugReproducesUnderHashCompaction) {
  const std::vector<std::string> files = CorpusFiles();
  ASSERT_FALSE(files.empty());
  std::optional<minimize::GoldenTrace> cheapest;
  for (const std::string& f : files) {
    auto golden = minimize::LoadGoldenTrace(f);
    ASSERT_TRUE(golden.ok()) << golden.error();
    if (!cheapest || golden.value().events.size() < cheapest->events.size()) {
      cheapest = std::move(golden.value());
    }
  }
  const conformance::BugInfo& bug = conformance::FindBug(cheapest->bug);
  const Spec spec = conformance::MakeBugSpec(bug);

  store::CompactStateStore store;
  ParBfsOptions opts;
  opts.workers = 2;
  opts.steal = true;
  opts.base.ooc.state_store = &store;
  opts.base.time_budget_s = 120;
  const BfsResult r = ParallelBfsCheck(spec, opts);
  ASSERT_TRUE(r.violation.has_value())
      << bug.id << ": no violation in " << r.distinct_states << " states";
  EXPECT_TRUE(r.hash_compact);
  EXPECT_GT(r.collision_probability, 0.0);
  EXPECT_EQ(r.violation->invariant, cheapest->invariant) << bug.id;
  // Golden traces are event-minimal and BFS reports minimal depth.
  EXPECT_EQ(r.violation->depth, cheapest->events.size()) << bug.id;
  EXPECT_EQ(r.violation->trace.size(), cheapest->events.size() + 1) << bug.id;
}

INSTANTIATE_TEST_SUITE_P(Golden, CorpusReplay, ::testing::ValuesIn(CorpusFiles()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return TestName(info.param);
                         });

}  // namespace
}  // namespace sandtable
