// A tiny *unmodified* target program for the LD_PRELOAD interception test: it
// reads the clock the way real systems schedule timeouts (now + delta, poll
// against the deadline) and prints what it observes.
#include <cstdio>
#include <ctime>

int main() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  const long long t0 = ts.tv_sec * 1000000000LL + ts.tv_nsec;
  std::printf("t0=%lld\n", t0);

  // A 100ms "timeout": with the interceptor, the sleep advances virtual time
  // instantly instead of blocking.
  struct timespec delay{0, 100000000};
  nanosleep(&delay, nullptr);

  clock_gettime(CLOCK_MONOTONIC, &ts);
  const long long t1 = ts.tv_sec * 1000000000LL + ts.tv_nsec;
  std::printf("t1=%lld\n", t1);
  std::printf("elapsed=%lld\n", t1 - t0);
  return 0;
}
