// Serve smoke test (label serve-smoke): boots the real sandtable_serve
// binary on a Unix socket, drives it with the real sandtable_client binary,
// and validates the captured frame streams with bench_validate_json --serve.
//
// Two scenarios, mirroring the daily workflow:
//   1. A small check job: streamed frames validate, the client exits 0, and
//      the result document matches what `sandtable_cli check` prints for the
//      same target — the daemon is a scheduler around the same engines, not a
//      different checker.
//   2. A cancelled walk: an effectively-unbounded simulate job is cancelled
//      by id from a second connection; the submitting client sees the
//      cancelled result (exit 2) and its capture still validates.
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/util/json.h"

#ifndef SANDTABLE_SERVE_BIN
#define SANDTABLE_SERVE_BIN ""
#endif
#ifndef SANDTABLE_CLIENT_BIN
#define SANDTABLE_CLIENT_BIN ""
#endif
#ifndef SANDTABLE_CLI_BIN
#define SANDTABLE_CLI_BIN ""
#endif
#ifndef SANDTABLE_VALIDATOR_BIN
#define SANDTABLE_VALIDATOR_BIN ""
#endif

namespace sandtable {
namespace {

using Clock = std::chrono::steady_clock;

// Runs a shell command, returns its exit code (-1 if it died on a signal).
int RunCmd(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string ReadFile(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Strips wall-clock keys and the per-run correlation id so a daemon result
// and a CLI result of the same deterministic run compare equal. The daemon
// embeds an `analytics` profile by default while a bare CLI run does not;
// count-level analytics equality is pinned by the in-process serve e2e.
Json StripVolatile(const Json& doc) {
  if (doc.is_object()) {
    JsonObject out;
    for (const auto& [key, value] : doc.as_object()) {
      if (key == "seconds" || key == "queued_s" || key == "run_s" ||
          key == "run_id" || key == "analytics") {
        continue;
      }
      out[key] = StripVolatile(value);
    }
    return Json(std::move(out));
  }
  if (doc.is_array()) {
    JsonArray out;
    for (const Json& v : doc.as_array()) {
      out.push_back(StripVolatile(v));
    }
    return Json(std::move(out));
  }
  return doc;
}

// First JSONL line in `content` satisfying `pred`, or null.
template <typename Pred>
Json FindLine(const std::string& content, Pred pred) {
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '{') {
      continue;
    }
    auto parsed = Json::Parse(line);
    if (parsed.ok() && pred(parsed.value())) {
      return parsed.value();
    }
  }
  return Json();
}

class ServeSmoke : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/st-smoke-" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
    sock_ = dir_ + "/serve.sock";
    ::unlink(sock_.c_str());

    daemon_pid_ = ::fork();
    ASSERT_GE(daemon_pid_, 0) << "fork failed";
    if (daemon_pid_ == 0) {
      // Child: the daemon. Its one "serving" stdout line goes to a file.
      std::freopen((dir_ + "/serving.json").c_str(), "w", stdout);
      ::execl(SANDTABLE_SERVE_BIN, SANDTABLE_SERVE_BIN, "--socket",
              sock_.c_str(), "--workers", "2", (char*)nullptr);
      std::perror("execl sandtable_serve");
      std::_Exit(127);
    }

    // Wait until the daemon answers a ping.
    const std::string ping = std::string(SANDTABLE_CLIENT_BIN) + " --socket " +
                             sock_ + " ping > /dev/null 2>&1";
    const auto deadline = Clock::now() + std::chrono::seconds(20);
    bool up = false;
    while (Clock::now() < deadline) {
      if (RunCmd(ping) == 0) {
        up = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_TRUE(up) << "daemon never came up on " << sock_;
  }

  void TearDown() override {
    if (daemon_pid_ > 0) {
      ::kill(daemon_pid_, SIGTERM);
      // Graceful drain first, SIGKILL as a backstop.
      const auto deadline = Clock::now() + std::chrono::seconds(15);
      int status = 0;
      pid_t done = 0;
      while (Clock::now() < deadline) {
        done = ::waitpid(daemon_pid_, &status, WNOHANG);
        if (done == daemon_pid_) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (done != daemon_pid_) {
        ::kill(daemon_pid_, SIGKILL);
        ::waitpid(daemon_pid_, &status, 0);
        ADD_FAILURE() << "daemon did not drain on SIGTERM";
      } else {
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << "daemon exit status " << status;
      }
    }
  }

  std::string Client(const std::string& rest) {
    return std::string(SANDTABLE_CLIENT_BIN) + " --socket " + sock_ + " " + rest;
  }

  std::string dir_;
  std::string sock_;
  pid_t daemon_pid_ = -1;
};

TEST_F(ServeSmoke, CheckJobStreamsValidatesAndMatchesCli) {
  const std::string capture = dir_ + "/check.jsonl";
  const std::string params =
      R"('{"system":"pysyncobj","max_states":3000,"progress_every":500}')";
  ASSERT_EQ(RunCmd(Client("submit check --params " + params) + " > " + capture), 0);

  // The captured connection stream passes the serve validator.
  EXPECT_EQ(RunCmd(std::string(SANDTABLE_VALIDATOR_BIN) + " " + capture +
                " --serve > /dev/null"),
            0);

  const std::string content = ReadFile(capture);
  const Json result = FindLine(content, [](const Json& f) {
    return f["type"].as_string() == "result";
  });
  ASSERT_TRUE(result.is_object()) << content;
  EXPECT_EQ(result["status"].as_string(), "done");
  const Json progress = FindLine(content, [](const Json& f) {
    return f["type"].as_string() == "progress";
  });
  EXPECT_TRUE(progress.is_object()) << "no streamed progress in capture";

  // Same target through the standalone CLI: identical result document.
  const std::string cli_out = dir_ + "/cli.json";
  ASSERT_EQ(RunCmd(std::string(SANDTABLE_CLI_BIN) +
                " check --system pysyncobj --states 3000 --report json > " +
                cli_out),
            0);
  const Json report = FindLine(ReadFile(cli_out), [](const Json& f) {
    return f["result"].is_object();
  });
  ASSERT_TRUE(report.is_object()) << ReadFile(cli_out);
  EXPECT_EQ(StripVolatile(result["result"]).Dump(),
            StripVolatile(report["result"]).Dump())
      << "daemon and CLI diverged for the same check";
}

TEST_F(ServeSmoke, CancelledWalkStreamsAndValidates) {
  const std::string capture = dir_ + "/walk.jsonl";

  // Background client: submits an effectively-unbounded walk and stays
  // attached, streaming frames into the capture.
  const pid_t client_pid = ::fork();
  ASSERT_GE(client_pid, 0);
  if (client_pid == 0) {
    std::freopen(capture.c_str(), "w", stdout);
    ::execl(SANDTABLE_CLIENT_BIN, SANDTABLE_CLIENT_BIN, "--socket",
            sock_.c_str(), "submit", "simulate", "--params",
            R"({"traces":1000000000,"walk_depth":50,"progress_every":2000})",
            (char*)nullptr);
    std::perror("execl sandtable_client");
    std::_Exit(127);
  }

  // Fish the job id out of the streamed ack.
  uint64_t job = 0;
  const auto deadline = Clock::now() + std::chrono::seconds(20);
  while (Clock::now() < deadline && job == 0) {
    const Json ack = FindLine(ReadFile(capture), [](const Json& f) {
      return f["type"].as_string() == "ack" && f["job"].is_int();
    });
    if (ack.is_object()) {
      job = static_cast<uint64_t>(ack["job"].as_int());
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GT(job, 0u) << "no ack in capture: " << ReadFile(capture);

  // Cancel it from a second connection, by id.
  EXPECT_EQ(RunCmd(Client("cancel " + std::to_string(job)) + " > /dev/null"), 0);

  // The attached client sees the cancelled result: exit code 2.
  int status = 0;
  ASSERT_EQ(::waitpid(client_pid, &status, 0), client_pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);

  EXPECT_EQ(RunCmd(std::string(SANDTABLE_VALIDATOR_BIN) + " " + capture +
                " --serve > /dev/null"),
            0);
  const Json result = FindLine(ReadFile(capture), [](const Json& f) {
    return f["type"].as_string() == "result";
  });
  ASSERT_TRUE(result.is_object()) << ReadFile(capture);
  EXPECT_EQ(result["status"].as_string(), "cancelled");
}

}  // namespace
}  // namespace sandtable
