// State-space analytics: profile round-trips, malformed-input rejection,
// merge/reset semantics at the parallel barrier, serial-vs-parallel count
// determinism, checkpoint/resume continuity, and the coverage-hole warnings
// in the text report. The concurrency tests carry the `par` label so the
// TSan build exercises the worker-profile merge path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/mc/bfs.h"
#include "src/mc/coverage.h"
#include "src/mc/random_walk.h"
#include "src/obs/analytics.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/par/parallel_bfs.h"
#include "src/store/checkpoint.h"
#include "src/store/ooc.h"
#include "src/store/state_store.h"
#include "src/util/json.h"
#include "src/util/rng.h"
#include "tests/toy_specs.h"

namespace sandtable {
namespace {

namespace fs = std::filesystem;
using obs::ActionInfo;
using obs::ExplorationProfile;

// ---- CoverageStats::FromFullJson error paths --------------------------------

TEST(CoverageJson, FullRoundTrip) {
  CoverageStats c;
  c.branches = {"A/x", "B/y"};
  c.RecordEvent(EventKind::kMessage);
  c.RecordEvent(EventKind::kTimeout);
  auto back = CoverageStats::FromFullJson(c.ToFullJson());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().branches, c.branches);
  EXPECT_EQ(back.value().transitions, c.transitions);
  EXPECT_EQ(back.value().event_counts, c.event_counts);
}

TEST(CoverageJson, RejectsMalformedStats) {
  auto r = CoverageStats::FromFullJson(Json(std::string("nope")));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "malformed coverage stats");

  // Wrong event_counts arity is also a malformed-stats error.
  Json j = CoverageStats().ToFullJson();
  j["event_counts"] = Json(JsonArray{});
  r = CoverageStats::FromFullJson(j);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "malformed coverage stats");
}

TEST(CoverageJson, RejectsMalformedBranchName) {
  Json j = CoverageStats().ToFullJson();
  j["branches"] = Json(JsonArray{Json(static_cast<int64_t>(7))});
  auto r = CoverageStats::FromFullJson(j);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "malformed coverage branch name");
}

TEST(CoverageJson, RejectsMalformedEventCount) {
  Json j = CoverageStats().ToFullJson();
  j["event_counts"].as_array()[3] = Json(std::string("three"));
  auto r = CoverageStats::FromFullJson(j);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "malformed coverage event count");
}

// ---- ExplorationProfile serialization ---------------------------------------

ExplorationProfile SampleProfile() {
  ExplorationProfile p;
  p.Init({ActionInfo{"Send", "Message", {"fast", "slow"}},
          ActionInfo{"Tick", "Timeout", {}}},
         {"Safe"}, {"Monotonic"});
  p.RecordState();
  p.RecordExpand(0, 3, 120);
  p.RecordExpand(1, 0, 15);
  p.RecordBranch(0, "fast");
  p.RecordBranch(0, "fast");
  p.RecordDuplicate(0);
  p.RecordInvariant(0, 40);
  p.RecordTransitionInvariant(0, 25);
  p.RecordDeliveryPairs(2, 3);
  p.RecordLevel(0, 1);
  p.RecordLevel(1, 3);
  p.SetDistinctStates(4);
  return p;
}

TEST(ProfileJson, RoundTripPreservesEverything) {
  const ExplorationProfile p = SampleProfile();
  auto back = ExplorationProfile::FromJson(p.ToJson());
  ASSERT_TRUE(back.ok()) << back.error();
  // ToJson includes every serialized field plus the derived ones, so Dump
  // equality is the strongest round-trip check available.
  EXPECT_EQ(back.value().ToJson().Dump(), p.ToJson().Dump());
}

TEST(ProfileJson, DerivedFieldsAndCoverageHoles) {
  const Json j = SampleProfile().ToJson();
  EXPECT_EQ(j["successors"].as_int(), 3);
  EXPECT_EQ(j["duplicates"].as_int(), 1);
  EXPECT_DOUBLE_EQ(j["duplicate_rate"].as_double(), 1.0 / 3.0);
  EXPECT_EQ(j["delivery_pairs"].as_int(), 3);
  EXPECT_EQ(j["commuting_delivery_pairs"].as_int(), 2);
  // Tick never fired; Send/slow was declared but never hit.
  ASSERT_EQ(j["zero_hit_actions"].size(), 1u);
  EXPECT_EQ(j["zero_hit_actions"][0].as_string(), "Tick");
  ASSERT_EQ(j["zero_hit_branches"].size(), 1u);
  EXPECT_EQ(j["zero_hit_branches"][0].as_string(), "Send/slow");
}

TEST(ProfileJson, RejectsMalformedDocuments) {
  auto expect_error = [](const Json& j, const std::string& want) {
    auto r = ExplorationProfile::FromJson(j);
    ASSERT_FALSE(r.ok()) << "accepted: " << j.Dump();
    EXPECT_EQ(r.error(), want);
  };
  expect_error(Json(std::string("nope")), "malformed exploration profile");

  Json good = SampleProfile().ToJson();
  Json j = good;
  j["actions"].as_array()[0] = Json(JsonObject{});
  expect_error(j, "malformed exploration profile action");

  j = good;
  j["actions"].as_array()[0]["declared_branches"].as_array()[0] = Json(static_cast<int64_t>(1));
  expect_error(j, "malformed exploration profile declared branch");

  j = good;
  j["actions"].as_array()[0]["branches"].as_array()[0] = Json(std::string("fast"));
  expect_error(j, "malformed exploration profile branch");

  j = good;
  j["invariants"] = Json(JsonArray{Json(std::string("Safe"))});
  expect_error(j, "malformed exploration profile invariants");

  j = good;
  j["depth_histogram"].as_array()[0] = Json(std::string("one"));
  expect_error(j, "malformed exploration profile depth histogram");
}

TEST(ProfileJson, CollisionProbabilityFormula) {
  EXPECT_DOUBLE_EQ(ExplorationProfile::CollisionProbability(0), 0.0);
  // n = 2^32 puts n^2/2^65 at exactly 1/2: p = 1 - e^{-1/2}.
  EXPECT_NEAR(ExplorationProfile::CollisionProbability(uint64_t{1} << 32),
              1.0 - std::exp(-0.5), 1e-12);
  const double small = ExplorationProfile::CollisionProbability(1000000);
  const double large = ExplorationProfile::CollisionProbability(1000000000);
  EXPECT_GT(small, 0.0);
  EXPECT_LT(small, large);
  EXPECT_LE(large, 1.0);
}

// ---- Merge / reset (the barrier pattern) ------------------------------------

TEST(ProfileMerge, MergeAddsCountsAndMaxesFanout) {
  ExplorationProfile a = SampleProfile();
  ExplorationProfile b;
  b.Init({ActionInfo{"Send", "Message", {"fast", "slow"}},
          ActionInfo{"Tick", "Timeout", {}}},
         {"Safe"}, {"Monotonic"});
  b.RecordExpand(0, 5, 80);
  b.RecordBranch(0, "slow");
  b.RecordLevel(1, 2);
  a.MergeCounts(b);
  EXPECT_EQ(a.action_stats(0).fired, 8u);
  EXPECT_EQ(a.action_stats(0).fanout_max, 5u);  // max, not sum
  EXPECT_EQ(a.action_stats(0).expand_ns, 200u);
  ASSERT_EQ(a.wave_widths().size(), 2u);
  EXPECT_EQ(a.wave_widths()[1], 5u);  // 3 + 2

  // The merged-in "slow" branch surfaces exactly once per drain.
  std::vector<std::string> names;
  a.DrainNewBranches(&names);
  ASSERT_EQ(names.size(), 2u);  // fast, slow (first drain on this profile)
  names.clear();
  a.DrainNewBranches(&names);
  EXPECT_TRUE(names.empty());
}

TEST(ProfileMerge, ResetKeepsIdentityAndBranchSlots) {
  ExplorationProfile p = SampleProfile();
  std::vector<std::string> names;
  p.DrainNewBranches(&names);  // mark "fast" drained
  p.ResetCounts();
  EXPECT_EQ(p.TotalFired(), 0u);
  EXPECT_EQ(p.states_expanded(), 0u);
  EXPECT_TRUE(p.wave_widths().empty());
  // The interned slot survives the reset, so a re-hit is not "new" again.
  p.RecordBranch(0, "fast");
  names.clear();
  p.DrainNewBranches(&names);
  EXPECT_TRUE(names.empty());
}

// Worker threads record into private profiles concurrently; the coordinator
// merges after the join — the exact level-barrier pattern, under TSan.
TEST(ProfileMerge, ConcurrentWorkersThenMerge) {
  constexpr int kWorkers = 4;
  constexpr uint64_t kPerWorker = 10000;
  std::vector<ActionInfo> actions = {ActionInfo{"A", "Internal", {}},
                                     ActionInfo{"B", "Internal", {}}};
  ExplorationProfile main;
  main.Init(actions, {}, {});
  std::vector<ExplorationProfile> workers(kWorkers);
  for (ExplorationProfile& w : workers) {
    w.Init(actions, {}, {});
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&workers, t]() {
      for (uint64_t i = 0; i < kPerWorker; ++i) {
        workers[t].RecordState();
        workers[t].RecordExpand(0, 2, 1);
        workers[t].RecordBranch(0, i % 2 == 0 ? "x" : "y");
        workers[t].RecordDuplicate(1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (ExplorationProfile& w : workers) {
    main.MergeCounts(w);
    w.ResetCounts();
  }
  EXPECT_EQ(main.states_expanded(), kWorkers * kPerWorker);
  EXPECT_EQ(main.action_stats(0).fired, 2 * kWorkers * kPerWorker);
  EXPECT_EQ(main.action_stats(1).duplicates, kWorkers * kPerWorker);
  // Merging the reset (all-zero) worker slices again must be a no-op — the
  // cancel-path checkpoint relies on this idempotence.
  for (const ExplorationProfile& w : workers) {
    main.MergeCounts(w);
  }
  EXPECT_EQ(main.action_stats(0).fired, 2 * kWorkers * kPerWorker);
}

// ---- Engine integration -----------------------------------------------------

// Exhaustive DieHard without its invariant: 16 states, 6 actions, no early
// exit — per-action counts must not depend on the worker count.
Spec ExhaustibleDieHard() {
  Spec spec = toys::DieHard();
  spec.invariants.clear();
  return spec;
}

TEST(ProfileEngines, SerialAndParallelCountsAgree) {
  const Spec spec = ExhaustibleDieHard();
  ExplorationProfile serial;
  BfsOptions opts;
  opts.analytics = &serial;
  const BfsResult r1 = BfsCheck(spec, opts);
  ASSERT_TRUE(r1.exhausted);

  ExplorationProfile par;
  ParBfsOptions popts;
  popts.base.analytics = &par;
  popts.workers = 4;
  popts.chunk_size = 1;
  const BfsResult r4 = ParallelBfsCheck(spec, popts);
  ASSERT_TRUE(r4.exhausted);
  EXPECT_EQ(r1.distinct_states, r4.distinct_states);

  ASSERT_EQ(serial.num_actions(), par.num_actions());
  for (size_t i = 0; i < serial.num_actions(); ++i) {
    SCOPED_TRACE(serial.actions()[i].name);
    EXPECT_EQ(serial.action_stats(i).enabled, par.action_stats(i).enabled);
    EXPECT_EQ(serial.action_stats(i).fired, par.action_stats(i).fired);
    EXPECT_EQ(serial.action_stats(i).fanout_max, par.action_stats(i).fanout_max);
  }
  // Per-action duplicate attribution is schedule-dependent in the parallel
  // engine (arbitrary insert winner); the totals are not.
  EXPECT_EQ(serial.TotalDuplicates(), par.TotalDuplicates());
  EXPECT_EQ(serial.states_expanded(), par.states_expanded());
  EXPECT_EQ(serial.distinct_states(), par.distinct_states());
  EXPECT_EQ(serial.wave_widths(), par.wave_widths());
}

TEST(ProfileEngines, CounterRunFlagsUndeclaredBranchHole) {
  ExplorationProfile prof;
  BfsOptions opts;
  opts.analytics = &prof;
  const BfsResult r = BfsCheck(toys::Counter(6), opts);
  ASSERT_TRUE(r.exhausted);
  const Json j = prof.ToJson();
  // "even" and "odd" fire; declared-but-unreachable "negative" is the hole.
  bool saw_negative = false;
  for (const Json& name : j["zero_hit_branches"].as_array()) {
    saw_negative |= name.as_string() == "Inc/negative";
  }
  EXPECT_TRUE(saw_negative) << j.Dump();
  // Interned branch hits still reach CoverageStats through the drain.
  EXPECT_TRUE(r.coverage.branches.count("Inc/even") == 1 &&
              r.coverage.branches.count("Inc/odd") == 1);
}

TEST(ProfileEngines, CommutingDeliveryPairsCounted) {
  ExplorationProfile ring;
  BfsOptions opts;
  opts.analytics = &ring;
  const BfsResult r = BfsCheck(toys::TokenRing(3, 2), opts);
  ASSERT_TRUE(r.exhausted);
  const Json j = ring.ToJson();
  EXPECT_GT(j["delivery_pairs"].as_int(), 0);
  EXPECT_GT(j["commuting_delivery_pairs"].as_int(), 0);
  EXPECT_LE(j["commuting_delivery_pairs"].as_int(), j["delivery_pairs"].as_int());

  // Internal-only actions produce no delivery pairs at all.
  ExplorationProfile jugs;
  BfsOptions jopts;
  jopts.analytics = &jugs;
  BfsCheck(ExhaustibleDieHard(), jopts);
  EXPECT_EQ(jugs.ToJson()["delivery_pairs"].as_int(), 0);
}

TEST(ProfileEngines, WalkBatchAggregatesDepthHistogram) {
  const Spec spec = toys::Counter(10);
  ExplorationProfile prof;
  WalkOptions opts;
  opts.max_depth = 10;
  opts.analytics = &prof;
  constexpr int kWalks = 5;
  for (int i = 0; i < kWalks; ++i) {
    Rng rng(100 + i);
    RandomWalk(spec, opts, rng);
  }
  // Each walk buckets its end depth once: widths sum to the walk count.
  uint64_t total = 0;
  for (uint64_t w : prof.wave_widths()) {
    total += w;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kWalks));
  EXPECT_GT(prof.states_expanded(), 0u);
}

// ---- Checkpoint / resume continuity -----------------------------------------

class AnalyticsResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sandtable-analytics-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    if (!HasFailure()) {
      std::error_code ec;
      fs::remove_all(dir_, ec);
    }
  }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

void ExpectSameCounts(const ExplorationProfile& a, const ExplorationProfile& b) {
  ASSERT_EQ(a.num_actions(), b.num_actions());
  for (size_t i = 0; i < a.num_actions(); ++i) {
    SCOPED_TRACE(a.actions()[i].name);
    EXPECT_EQ(a.action_stats(i).enabled, b.action_stats(i).enabled);
    EXPECT_EQ(a.action_stats(i).fired, b.action_stats(i).fired);
    EXPECT_EQ(a.action_stats(i).fanout_max, b.action_stats(i).fanout_max);
    EXPECT_EQ(a.action_stats(i).duplicates, b.action_stats(i).duplicates);
  }
  EXPECT_EQ(a.states_expanded(), b.states_expanded());
  EXPECT_EQ(a.distinct_states(), b.distinct_states());
  EXPECT_EQ(a.wave_widths(), b.wave_widths());
}

TEST_F(AnalyticsResumeTest, ResumedProfileMatchesUninterruptedRun) {
  const Spec spec = toys::Counter(30);
  ExplorationProfile uninterrupted;
  BfsOptions plain;
  plain.analytics = &uninterrupted;
  const BfsResult full = BfsCheck(spec, plain);
  ASSERT_TRUE(full.exhausted);

  const std::string ckpt_dir = Path("run.ckpt");
  {
    store::StoreConfig scfg;
    scfg.spill_dir = Path("a-fps");
    store::SpillingStateStore state_store(scfg);
    store::SpoolConfig spool_cfg;
    spool_cfg.dir = Path("a-frontier");
    store::Checkpointer::Config ccfg;
    ccfg.dir = ckpt_dir;
    ccfg.every_states = 5;
    store::Checkpointer ckpt(ccfg, &spec);
    ExplorationProfile crashed;  // dies with the "process"
    BfsOptions opts;
    opts.ooc.state_store = &state_store;
    opts.ooc.frontier_spool = &spool_cfg;
    opts.ooc.checkpointer = &ckpt;
    opts.max_distinct_states = 12;
    opts.analytics = &crashed;
    const BfsResult partial = BfsCheck(spec, opts);
    ASSERT_TRUE(partial.hit_state_limit);
    ASSERT_GT(ckpt.writes(), 0u);
  }

  auto resumed_ckpt = store::OpenCheckpoint(ckpt_dir, spec);
  ASSERT_TRUE(resumed_ckpt.ok()) << resumed_ckpt.error();
  store::StoreConfig scfg;
  scfg.spill_dir = Path("b-fps");
  store::SpillingStateStore state_store(scfg);
  store::SpoolConfig spool_cfg;
  spool_cfg.dir = Path("b-frontier");
  ASSERT_TRUE(state_store.LoadRuns(resumed_ckpt.value().run_paths).ok());
  ExplorationProfile resumed;
  BfsOptions opts;
  opts.ooc.state_store = &state_store;
  opts.ooc.frontier_spool = &spool_cfg;
  opts.ooc.resume = &resumed_ckpt.value();
  opts.analytics = &resumed;
  const BfsResult rest = BfsCheck(spec, opts);
  ASSERT_TRUE(rest.exhausted);
  EXPECT_EQ(rest.distinct_states, full.distinct_states);

  ExpectSameCounts(uninterrupted, resumed);
}

// ---- Report rendering -------------------------------------------------------

TEST(ProfileReport, TextReportWarnsOnCoverageHoles) {
  ExplorationProfile p = SampleProfile();
  JsonObject result;
  result["distinct_states"] = Json(static_cast<int64_t>(4));
  result["analytics"] = p.ToJson();
  const Json report = obs::MakeReport("bfs", Json(std::move(result)), nullptr);
  const std::string text = obs::ReportToText(report);
  EXPECT_NE(text.find("state-space analytics:"), std::string::npos) << text;
  EXPECT_NE(text.find("hot actions (by expand time):"), std::string::npos);
  EXPECT_NE(text.find("WARNING: action Tick never fired (coverage hole)"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("WARNING: branch Send/slow declared but never hit (coverage hole)"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("commuting deliveries"), std::string::npos);
  // A report without an analytics object renders no analytics section.
  const Json bare = obs::MakeReport("bfs", Json(JsonObject{}), nullptr);
  EXPECT_EQ(obs::ReportToText(bare).find("state-space analytics:"),
            std::string::npos);
}

TEST(ProfileReport, FlushToMetricsExportsPerActionCounters) {
  obs::MetricsRegistry registry;
  SampleProfile().FlushToMetrics(&registry);
  const Json snap = registry.Snapshot().ToJson();
  EXPECT_EQ(snap["counters"]["analytics.action.fired.Send"].as_int(), 3);
  EXPECT_EQ(snap["counters"]["analytics.action.duplicates.Send"].as_int(), 1);
  EXPECT_EQ(snap["counters"]["analytics.invariant.ns.Safe"].as_int(), 40);
}

}  // namespace
}  // namespace sandtable
