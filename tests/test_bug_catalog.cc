#include <gtest/gtest.h>

#include <set>

#include "src/conformance/bug_catalog.h"
#include "src/raftspec/raft_spec.h"

namespace sandtable {
namespace {

using conformance::BugCatalog;
using conformance::BugInfo;
using conformance::BugStage;
using conformance::FindBug;
using conformance::MakeBugProfile;

TEST(BugCatalog, HasAll23Table2Bugs) {
  EXPECT_EQ(BugCatalog().size(), 23u);
  int verification = 0;
  int conformance_stage = 0;
  int modeling = 0;
  int new_bugs = 0;
  for (const BugInfo& bug : BugCatalog()) {
    switch (bug.stage) {
      case BugStage::kVerification:
        ++verification;
        break;
      case BugStage::kConformance:
        ++conformance_stage;
        break;
      case BugStage::kModeling:
        ++modeling;
        break;
    }
    new_bugs += bug.is_new ? 1 : 0;
  }
  // Table 2: 16 model-checking bugs, 6 conformance bugs, 1 modeling bug,
  // 18 new bugs.
  EXPECT_EQ(verification, 16);
  EXPECT_EQ(conformance_stage, 6);
  EXPECT_EQ(modeling, 1);
  EXPECT_EQ(new_bugs, 18);
}

TEST(BugCatalog, IdsUniqueAndSystemsKnown) {
  std::set<std::string> ids;
  const std::set<std::string> systems = {"pysyncobj", "wraft",  "redisraft", "daosraft",
                                         "raftos",    "xraft",  "xraftkv",   "zookeeper"};
  for (const BugInfo& bug : BugCatalog()) {
    EXPECT_TRUE(ids.insert(bug.id).second) << "duplicate id " << bug.id;
    EXPECT_TRUE(systems.count(bug.system) > 0) << bug.id;
    EXPECT_FALSE(bug.consequence.empty()) << bug.id;
  }
}

TEST(BugCatalog, VerificationBugsHaveOracles) {
  for (const BugInfo& bug : BugCatalog()) {
    if (bug.stage != BugStage::kVerification) {
      continue;
    }
    EXPECT_FALSE(bug.invariant.empty()) << bug.id;
    EXPECT_GT(bug.paper_states, 0) << bug.id;
    EXPECT_GT(bug.paper_depth, 0) << bug.id;
    if (!bug.zab_bug) {
      ASSERT_NE(bug.enable_spec, nullptr) << bug.id;
    }
  }
}

TEST(BugCatalog, ConformanceBugsAreImplOnly) {
  for (const BugInfo& bug : BugCatalog()) {
    if (bug.stage != BugStage::kConformance) {
      continue;
    }
    EXPECT_EQ(bug.enable_spec, nullptr) << bug.id;
    ASSERT_NE(bug.enable_impl, nullptr) << bug.id;
    // Each conformance bug flips exactly its own impl switch.
    systems::RaftImplBugs impl;
    bug.enable_impl(impl);
    EXPECT_TRUE(impl.AnySet()) << bug.id;
  }
}

TEST(BugCatalog, FindBugLooksUpById) {
  EXPECT_EQ(FindBug("PySyncObj#4").paper_depth, 25);
  EXPECT_EQ(FindBug("ZooKeeper#1").invariant, "VotesTotallyOrdered");
  EXPECT_TRUE(FindBug("ZooKeeper#1").zab_bug);
}

TEST(BugCatalog, MakeBugProfileSeedsExactlyOneBugSet) {
  const RaftProfile p = MakeBugProfile(FindBug("PySyncObj#2"));
  EXPECT_TRUE(p.bugs.pso2_commit_regress);
  EXPECT_FALSE(p.bugs.pso3_next_le_match);
  EXPECT_FALSE(p.bugs.xkv1_stale_read);
  // Tuned budget applied.
  EXPECT_EQ(p.budget.max_crashes, 0);
  // Profile features preserved.
  EXPECT_TRUE(p.features.optimistic_next);
}

TEST(BugCatalog, EverySeededProfileBuildsASpec) {
  for (const BugInfo& bug : BugCatalog()) {
    if (bug.zab_bug || bug.stage != BugStage::kVerification) {
      continue;
    }
    const Spec spec = MakeRaftSpec(MakeBugProfile(bug));
    EXPECT_FALSE(spec.actions.empty()) << bug.id;
    EXPECT_FALSE(spec.invariants.empty()) << bug.id;
  }
}

}  // namespace
}  // namespace sandtable
