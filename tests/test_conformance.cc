// End-to-end tests of the SandTable workflow: conformance checking (§3.2),
// discrepancy detection (Figure 4), and implementation-level bug confirmation
// by deterministic replay (§3.4).
#include <gtest/gtest.h>

#include "src/conformance/raft_harness.h"
#include "src/mc/bfs.h"
#include "src/raftspec/raft_spec.h"

namespace sandtable {
namespace {

using conformance::CheckConformance;
using conformance::ConfirmBug;
using conformance::ConformanceOptions;
using conformance::MakeHarnessSpec;
using conformance::MakeRaftEngineFactory;
using conformance::MakeRaftHarness;
using conformance::MakeRaftObserver;
using conformance::ObservationChannel;
using conformance::RaftHarness;

RaftHarness TunedHarness(const std::string& system, bool with_bugs) {
  RaftHarness h = MakeRaftHarness(system, with_bugs);
  // A modest failure budget so random walks exercise crashes and partitions.
  h.profile.budget.max_timeouts = 4;
  h.profile.budget.max_client_requests = 2;
  h.profile.budget.max_crashes = 1;
  h.profile.budget.max_restarts = 1;
  h.profile.budget.max_term = 3;
  return h;
}

ConformanceOptions QuickOptions(int traces = 60, uint64_t depth = 30) {
  ConformanceOptions o;
  o.max_traces = traces;
  o.max_trace_depth = depth;
  o.time_budget_s = 60;
  return o;
}

struct SystemCase {
  const char* system;
};

class ConformanceParityTest : public ::testing::TestWithParam<SystemCase> {};

// The fixed implementation conforms to the fixed specification on random
// traces: every variable matches after every event.
TEST_P(ConformanceParityTest, FixedProfileConforms) {
  const RaftHarness h = TunedHarness(GetParam().system, /*with_bugs=*/false);
  const Spec spec = MakeHarnessSpec(h);
  auto report =
      CheckConformance(spec, MakeRaftEngineFactory(h), MakeRaftObserver(h), QuickOptions());
  if (!report.conforms) {
    FAIL() << GetParam().system << ": " << report.discrepancy->ToString() << "\n"
           << TraceToString(report.failing_trace);
  }
  EXPECT_GT(report.events_replayed, 100u);
}

// With the semantic bug switches aligned on both sides (and impl-only crash
// bugs off), the buggy implementation conforms to the buggy specification —
// this is what makes replay-based bug confirmation possible.
TEST_P(ConformanceParityTest, AlignedBuggyProfileConforms) {
  RaftHarness h = TunedHarness(GetParam().system, /*with_bugs=*/true);
  h.impl_bugs = systems::RaftImplBugs{};  // spec-visible bugs only
  const Spec spec = MakeHarnessSpec(h);
  auto report =
      CheckConformance(spec, MakeRaftEngineFactory(h), MakeRaftObserver(h), QuickOptions());
  if (!report.conforms) {
    FAIL() << GetParam().system << ": " << report.discrepancy->ToString() << "\n"
           << TraceToString(report.failing_trace);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, ConformanceParityTest,
                         ::testing::Values(SystemCase{"pysyncobj"}, SystemCase{"wraft"},
                                           SystemCase{"redisraft"}, SystemCase{"daosraft"},
                                           SystemCase{"raftos"}, SystemCase{"xraft"},
                                           SystemCase{"xraftkv"}),
                         [](const ::testing::TestParamInfo<SystemCase>& info) {
                           return info.param.system;
                         });

// Figure 4 scenario: the spec is "fixed" but the implementation carries a
// semantic bug — conformance checking localizes the divergent variable.
TEST(Conformance, SpecImplMismatchDetected) {
  RaftHarness h = TunedHarness("pysyncobj", /*with_bugs=*/false);
  // Implementation side only: the PySyncObj#4 wrong-hint bug. The divergence
  // shows up in the network state as soon as a follower acknowledges a
  // non-empty AppendEntries with a different hint than the spec predicts.
  RaftHarness impl_side = h;
  impl_side.profile.bugs.pso4_match_regress = true;
  const Spec spec = MakeHarnessSpec(h);  // fixed spec
  auto report = CheckConformance(spec, MakeRaftEngineFactory(impl_side), MakeRaftObserver(h),
                                 QuickOptions(300, 30));
  ASSERT_FALSE(report.conforms) << "expected a spec/impl discrepancy";
  ASSERT_TRUE(report.discrepancy.has_value());
  EXPECT_EQ(report.discrepancy->kind, "state");
  ASSERT_FALSE(report.discrepancy->diffs.empty());
  // The divergent variable is localized to the in-flight response message.
  bool net_diff = false;
  for (const auto& d : report.discrepancy->diffs) {
    net_diff = net_diff || d.path.find("net") != std::string::npos;
  }
  EXPECT_TRUE(net_diff) << report.discrepancy->ToString();
}

// Implementation-only crash bugs are caught by conformance checking as
// unexpected node deaths (PySyncObj#1, RaftOS#3, Xraft#2).
TEST(Conformance, CrashBugsSurfaceAsDiscrepancies) {
  struct CrashCase {
    const char* system;
    void (*enable)(systems::RaftImplBugs&);
  };
  const CrashCase cases[] = {
      {"pysyncobj", [](systems::RaftImplBugs& b) { b.pso1_crash_on_disconnect = true; }},
      {"raftos", [](systems::RaftImplBugs& b) { b.ros3_crash_unknown_peer = true; }},
      {"xraft", [](systems::RaftImplBugs& b) { b.xr2_concurrent_modification = true; }},
  };
  for (const CrashCase& c : cases) {
    RaftHarness h = TunedHarness(c.system, /*with_bugs=*/false);
    h.profile.budget.max_partitions = h.profile.features.udp ? 0 : 1;
    c.enable(h.impl_bugs);
    const Spec spec = MakeHarnessSpec(h);
    auto report = CheckConformance(spec, MakeRaftEngineFactory(h), MakeRaftObserver(h),
                                   QuickOptions(500, 35));
    ASSERT_FALSE(report.conforms) << c.system << ": crash bug not detected";
    EXPECT_EQ(report.discrepancy->kind, "crash") << report.discrepancy->ToString();
  }
}

// WRaft#8 (stopping the heartbeat broadcast early) diverges from the spec in
// the network state.
TEST(Conformance, HeartbeatStopBugDetected) {
  RaftHarness h = TunedHarness("wraft", /*with_bugs=*/false);
  h.impl_bugs.wr8_stop_heartbeats = true;
  // Heartbeat sends only fail towards crashed peers under UDP semantics.
  h.profile.budget.max_crashes = 1;
  const Spec spec = MakeHarnessSpec(h);
  auto report = CheckConformance(spec, MakeRaftEngineFactory(h), MakeRaftObserver(h),
                                 QuickOptions(500, 35));
  ASSERT_FALSE(report.conforms) << "wr8 not detected";
  EXPECT_EQ(report.discrepancy->kind, "state");
}

// §3.4: a model-checking counterexample is confirmed at the implementation
// level by deterministic replay.
TEST(Conformance, BugConfirmationByReplay) {
  for (const char* bug : {"pso2", "ros1", "xkv1"}) {
    RaftHarness h = [&] {
      // Tight hunting budgets (no crash/partition noise unless the bug needs
      // it) so BFS reaches the violation quickly.
      RaftHarness out = MakeRaftHarness(
          std::string(bug) == "pso2"   ? "pysyncobj"
          : std::string(bug) == "ros1" ? "raftos"
                                       : "xraftkv",
          /*with_bugs=*/false);
      out.profile.budget.max_timeouts = 4;
      out.profile.budget.max_client_requests = 2;
      out.profile.budget.max_crashes = 0;
      out.profile.budget.max_restarts = 0;
      out.profile.budget.max_partitions = 0;
      out.profile.budget.max_drops = 0;
      out.profile.budget.max_dups = 0;
      out.profile.budget.max_term = 3;
      out.profile.budget.max_log_len = 3;
      if (std::string(bug) == "pso2") {
        out.profile.bugs.pso2_commit_regress = true;
      } else if (std::string(bug) == "ros1") {
        out.profile.bugs.ros1_match_regress = true;
        out.profile.budget.max_dups = 1;
      } else {
        out.profile.bugs.xkv1_stale_read = true;
        out.profile.budget.max_partitions = 1;
        out.profile.budget.max_timeouts = 3;
        out.profile.budget.max_client_requests = 1;
        out.profile.budget.max_log_len = 1;
        out.profile.config.num_values = 1;
      }
      return out;
    }();
    const Spec spec = MakeHarnessSpec(h);
    BfsOptions opts;
    opts.max_distinct_states = 3000000;
    opts.time_budget_s = 180;
    const BfsResult r = BfsCheck(spec, opts);
    ASSERT_TRUE(r.violation.has_value()) << bug << ": model checking found nothing";
    auto confirmation =
        ConfirmBug(MakeRaftEngineFactory(h), MakeRaftObserver(h), r.violation->trace);
    EXPECT_TRUE(confirmation.confirmed)
        << bug << ": replay diverged: "
        << (confirmation.replay.discrepancy ? confirmation.replay.discrepancy->ToString()
                                            : "");
    EXPECT_EQ(confirmation.replay.steps_executed, r.violation->trace.size() - 1);
  }
}

// The log-parsing observation channel also sustains conformance checking
// (scalar variables only).
TEST(Conformance, LogParserChannelConforms) {
  RaftHarness h = TunedHarness("pysyncobj", /*with_bugs=*/false);
  h.channel = ObservationChannel::kLogParser;
  const Spec spec = MakeHarnessSpec(h);
  auto report = CheckConformance(spec, MakeRaftEngineFactory(h), MakeRaftObserver(h),
                                 QuickOptions(30, 25));
  if (!report.conforms) {
    FAIL() << report.discrepancy->ToString();
  }
}

// Memory growth observed through the debug API (WRaft#6 is reported through
// resource inspection rather than state diffing).
TEST(Conformance, LeakCounterObservable) {
  RaftHarness h = TunedHarness("wraft", /*with_bugs=*/false);
  h.impl_bugs.wr6_leak = true;
  auto eng = MakeRaftEngineFactory(h)();
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));
  ASSERT_TRUE(eng->DeliverMessage(0, 1, ""));
  ASSERT_TRUE(eng->DeliverMessage(0, 2, ""));
  auto s1 = eng->QueryNodeState(1);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1.value()["leakedBuffers"].as_int(), 1);
}

}  // namespace
}  // namespace sandtable
