// Randomized differential-equivalence harness (label diff-smoke): ~50 seeded
// random small specifications run through every exploration configuration —
// serial BFS, level-synchronized parallel, work-stealing parallel, serial
// out-of-core (spilling store + frontier spool), hash-compacted store, and
// work-stealing + hash-compaction combined — asserting they agree on state
// count, depth, exhaustion and deadlocks, and that violating runs report the
// same invariant at the same (minimal) depth with an independently validated
// counterexample trace.
//
// This harness is what pins the two tentpole claims of the work-stealing and
// compaction changes: epoch-synchronized stealing preserves level semantics
// (par/steal.h), and the fingerprint-only store changes memory cost, not
// results (store/compact_store.h).
//
// Spec generator: k in [1,3] modular counters with bounded moduli (state
// space <= 6^3), random guarded increment actions (some branching, some
// gated so deadlocks occur), at most ONE checking rule per spec — either a
// state invariant or a transition invariant — so "the violated invariant"
// is unambiguous across engines that arbitrate candidates differently.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/mc/bfs.h"
#include "src/mc/expand.h"
#include "src/par/parallel_bfs.h"
#include "src/par/steal.h"
#include "src/store/compact_store.h"
#include "src/store/ooc.h"
#include "src/store/state_store.h"
#include "src/util/rng.h"
#include "tests/toy_specs.h"

namespace sandtable {
namespace {

namespace fs = std::filesystem;

constexpr int kSeeds = 50;

// ---- Random modular-counter spec generator ---------------------------------

const char* const kVarNames[] = {"a", "b", "c"};

int64_t GetVar(const State& s, int i) { return s.field(kVarNames[i]).int_v(); }

State SetVar(const State& s, int i, int64_t v) {
  return s.WithField(kVarNames[i], Value::Int(v));
}

Spec RandomModSpec(uint64_t seed) {
  Rng rng(seed);
  Spec spec;
  spec.name = "diff-" + std::to_string(seed);

  const int k = 1 + static_cast<int>(rng.Below(3));
  std::vector<int64_t> mod(static_cast<size_t>(k));
  for (int64_t& m : mod) {
    m = 2 + static_cast<int64_t>(rng.Below(5));  // [2, 6]
  }

  std::vector<Value::Field> init_fields;
  for (int i = 0; i < k; ++i) {
    init_fields.emplace_back(kVarNames[i], Value::Int(0));
  }
  spec.init_states.push_back(Value::Record(std::move(init_fields)));
  if (rng.Below(4) == 0) {
    // A second, distinct initial state (mod[0] >= 2 so v0 = 1 is in range).
    spec.init_states.push_back(SetVar(spec.init_states[0], 0, 1));
  }

  const int actions = 1 + static_cast<int>(rng.Below(3));
  const EventKind kinds[] = {EventKind::kInternal, EventKind::kMessage,
                             EventKind::kClientRequest};
  for (int a = 0; a < actions; ++a) {
    const int target = static_cast<int>(rng.Below(static_cast<uint64_t>(k)));
    const int64_t delta = 1 + static_cast<int64_t>(
                                  rng.Below(static_cast<uint64_t>(mod[target] - 1)));
    // Guard: 0 = always enabled, 1 = v[g] < c, 2 = v[g] != c.
    const int guard_kind = static_cast<int>(rng.Below(3));
    const int guard_var = static_cast<int>(rng.Below(static_cast<uint64_t>(k)));
    const int64_t guard_c =
        1 + static_cast<int64_t>(rng.Below(static_cast<uint64_t>(mod[guard_var] - 1)));
    // Some actions branch: a second emit with a different delta.
    const bool branches = rng.Below(3) == 0;
    const int target2 = static_cast<int>(rng.Below(static_cast<uint64_t>(k)));
    const int64_t delta2 = 1 + static_cast<int64_t>(
                                   rng.Below(static_cast<uint64_t>(mod[target2] - 1)));
    const int64_t m1 = mod[target];
    const int64_t m2 = mod[target2];

    Action act;
    act.name = "A" + std::to_string(a);
    act.kind = kinds[rng.Below(3)];
    act.expand = [=](const State& s, ActionContext& ctx) {
      const int64_t g = GetVar(s, guard_var);
      if (guard_kind == 1 && !(g < guard_c)) {
        return;
      }
      if (guard_kind == 2 && g == guard_c) {
        return;
      }
      ctx.Branch("step");
      ctx.Emit(SetVar(s, target, (GetVar(s, target) + delta) % m1));
      if (branches) {
        ctx.Branch("alt");
        ctx.Emit(SetVar(s, target2, (GetVar(s, target2) + delta2) % m2));
      }
    };
    spec.actions.push_back(std::move(act));
  }

  // At most one checking rule, so every engine that finds a violation must
  // name the same invariant.
  const int rule = static_cast<int>(rng.Below(4));
  if (rule == 2) {
    std::vector<int64_t> want(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
      want[static_cast<size_t>(i)] = static_cast<int64_t>(
          rng.Below(static_cast<uint64_t>(mod[static_cast<size_t>(i)])));
    }
    spec.invariants.push_back({"NotTarget", [want, k](const State& s) {
                                 for (int i = 0; i < k; ++i) {
                                   if (GetVar(s, i) != want[static_cast<size_t>(i)]) {
                                     return true;
                                   }
                                 }
                                 return false;  // exactly the target vector
                               }});
  } else if (rule == 3) {
    const int64_t c = 1 + static_cast<int64_t>(rng.Below(static_cast<uint64_t>(mod[0] - 1)));
    spec.transition_invariants.push_back(
        {"NoEntry", [c](const State& prev, const ActionLabel&, const State& next) {
           // Forbid edges that move v0 onto the value c.
           return !(GetVar(prev, 0) != c && GetVar(next, 0) == c);
         }});
  }
  return spec;
}

// ---- Engine configurations under test --------------------------------------

struct TinyOoc {
  explicit TinyOoc(const std::string& base) {
    store::StoreConfig scfg;
    scfg.spill_dir = base + "/fps";
    scfg.max_resident = 4;
    scfg.max_runs = 2;
    scfg.shard_count_log2 = 1;
    state_store = std::make_unique<store::SpillingStateStore>(scfg);
    spool_cfg.dir = base + "/frontier";
    spool_cfg.max_resident = 3;
    spool_cfg.chunk_states = 2;
  }
  store::OocConfig Config() {
    store::OocConfig ooc;
    ooc.state_store = state_store.get();
    ooc.frontier_spool = &spool_cfg;
    return ooc;
  }
  std::unique_ptr<store::SpillingStateStore> state_store;
  store::SpoolConfig spool_cfg;
};

enum class Engine {
  kSerial,
  kLevelSync,
  kSteal,
  kOutOfCore,      // serial engine, spilling store + frontier spool
  kCompact,        // serial engine, hash-compacted store
  kStealCompact,   // work-stealing engine, hash-compacted store
};

const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kSerial:
      return "serial";
    case Engine::kLevelSync:
      return "level-sync";
    case Engine::kSteal:
      return "steal";
    case Engine::kOutOfCore:
      return "out-of-core";
    case Engine::kCompact:
      return "hash-compact";
    case Engine::kStealCompact:
      return "steal+hash-compact";
  }
  return "?";
}

BfsResult RunEngine(const Spec& spec, Engine engine, const std::string& tmp) {
  switch (engine) {
    case Engine::kSerial:
      return BfsCheck(spec);
    case Engine::kLevelSync:
    case Engine::kSteal: {
      ParBfsOptions opts;
      opts.workers = 3;
      opts.chunk_size = 2;  // several chunks per level -> real steal traffic
      opts.steal = engine == Engine::kSteal;
      return ParallelBfsCheck(spec, opts);
    }
    case Engine::kOutOfCore: {
      TinyOoc ooc(tmp + "/ooc");
      BfsOptions opts;
      opts.ooc = ooc.Config();
      return BfsCheck(spec, opts);
    }
    case Engine::kCompact: {
      store::CompactStateStore::Config cfg;
      cfg.reserve = 16;  // force table growth on every non-trivial space
      cfg.shard_count_log2 = 2;
      store::CompactStateStore store(cfg);
      BfsOptions opts;
      opts.ooc.state_store = &store;
      return BfsCheck(spec, opts);
    }
    case Engine::kStealCompact: {
      store::CompactStateStore::Config cfg;
      cfg.reserve = 16;
      cfg.shard_count_log2 = 2;
      store::CompactStateStore store(cfg);
      ParBfsOptions opts;
      opts.workers = 3;
      opts.chunk_size = 2;
      opts.steal = true;
      opts.base.ooc.state_store = &store;
      return ParallelBfsCheck(spec, opts);
    }
  }
  return BfsResult{};
}

// ---- Independent trace validation ------------------------------------------

// Checks a reported violation trace against the spec from scratch: starts at
// an initial state, takes only real transitions, and actually violates the
// named rule at the end. Catches a reconstruction (parent-chain or re-search)
// that produced a plausible-looking but bogus trace.
void ValidateTrace(const Spec& spec, const Violation& v, const std::string& ctx) {
  ASSERT_FALSE(v.trace.empty()) << ctx;
  EXPECT_EQ(v.depth, v.trace.size() - 1) << ctx;

  bool is_init = false;
  for (const State& init : spec.init_states) {
    is_init = is_init || Fingerprint(spec, v.trace[0].state, false) ==
                             Fingerprint(spec, init, false);
  }
  EXPECT_TRUE(is_init) << ctx << ": trace does not start at an initial state";

  CoverageStats scratch;
  for (size_t i = 1; i < v.trace.size(); ++i) {
    const uint64_t want = Fingerprint(spec, v.trace[i].state, false);
    bool found = false;
    for (const Successor& s : ExpandAll(spec, v.trace[i - 1].state, &scratch, nullptr)) {
      found = found || Fingerprint(spec, s.state, false) == want;
    }
    ASSERT_TRUE(found) << ctx << ": trace step " << i << " is not a real transition";
  }

  if (v.is_transition_invariant) {
    ASSERT_GE(v.trace.size(), 2u) << ctx;
    ASSERT_EQ(spec.transition_invariants.size(), 1u) << ctx;
    EXPECT_EQ(v.invariant, spec.transition_invariants[0].name) << ctx;
    EXPECT_FALSE(spec.transition_invariants[0].check(
        v.trace[v.trace.size() - 2].state, v.trace.back().label,
        v.trace.back().state))
        << ctx << ": final edge does not violate " << v.invariant;
  } else {
    ASSERT_EQ(spec.invariants.size(), 1u) << ctx;
    EXPECT_EQ(v.invariant, spec.invariants[0].name) << ctx;
    EXPECT_FALSE(spec.invariants[0].check(v.trace.back().state))
        << ctx << ": final state does not violate " << v.invariant;
  }
}

void ExpectEquivalent(const BfsResult& ref, const BfsResult& got,
                      const std::string& ctx) {
  ASSERT_EQ(ref.violation.has_value(), got.violation.has_value()) << ctx;
  if (!ref.violation.has_value()) {
    // Violation-free: every engine fully explores the same space.
    EXPECT_EQ(ref.distinct_states, got.distinct_states) << ctx;
    EXPECT_EQ(ref.depth_reached, got.depth_reached) << ctx;
    EXPECT_EQ(ref.exhausted, got.exhausted) << ctx;
    EXPECT_EQ(ref.deadlock_states, got.deadlock_states) << ctx;
    return;
  }
  // Violating: engines stop at different points (serial stops mid-level,
  // parallel completes it), so state counts differ by contract — but the
  // violation must be the same rule at the same minimal depth.
  EXPECT_EQ(ref.violation->invariant, got.violation->invariant) << ctx;
  EXPECT_EQ(ref.violation->depth, got.violation->depth) << ctx;
  EXPECT_EQ(ref.violation->trace.size(), got.violation->trace.size()) << ctx;
}

class DifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sandtable-diff-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    if (!HasFailure()) {
      std::error_code ec;
      fs::remove_all(dir_, ec);
    }
  }
  fs::path dir_;
};

TEST_F(DifferentialTest, FiftySeededSpecsAgreeAcrossAllConfigurations) {
  const Engine engines[] = {Engine::kLevelSync, Engine::kSteal,
                            Engine::kOutOfCore, Engine::kCompact,
                            Engine::kStealCompact};
  int violating = 0;
  int exhausted = 0;
  int deadlocked = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Spec spec = RandomModSpec(seed);
    const BfsResult ref = RunEngine(spec, Engine::kSerial, dir_.string());
    if (ref.violation.has_value()) {
      ++violating;
      ValidateTrace(spec, *ref.violation, "seed " + std::to_string(seed) + " serial");
    } else {
      ASSERT_TRUE(ref.exhausted) << "seed " << seed << ": tiny space must exhaust";
      ++exhausted;
    }
    deadlocked += ref.deadlock_states > 0 ? 1 : 0;

    for (const Engine engine : engines) {
      const std::string ctx =
          "seed " + std::to_string(seed) + " " + EngineName(engine);
      const BfsResult got =
          RunEngine(spec, engine, (dir_ / std::to_string(seed)).string());
      ExpectEquivalent(ref, got, ctx);
      if (got.violation.has_value()) {
        ValidateTrace(spec, *got.violation, ctx);
      }
      // Mode flags: only the compacted configurations report a collision
      // bound, and they always do.
      const bool compact =
          engine == Engine::kCompact || engine == Engine::kStealCompact;
      EXPECT_EQ(got.hash_compact, compact) << ctx;
      if (compact && got.distinct_states > 0) {
        EXPECT_GT(got.collision_probability, 0.0) << ctx;
        EXPECT_LT(got.collision_probability, 1e-9) << ctx;
      }
      if (HasFatalFailure()) {
        return;
      }
    }
  }
  // The generator must exercise both outcomes, or the harness is vacuous.
  EXPECT_GE(violating, 5) << "generator produced too few violating specs";
  EXPECT_GE(exhausted, 5) << "generator produced too few violation-free specs";
  EXPECT_GE(deadlocked, 1) << "generator never produced a deadlock";
  std::printf("[differential] %d seeds: %d violating, %d exhausted, %d with deadlocks\n",
              kSeeds, violating, exhausted, deadlocked);
}

// The toy specs with known-good numbers run through the same matrix — a
// deterministic anchor alongside the randomized sweep (DieHard's minimal
// depth-6 violation, Counter's transition invariant, exhaustion + deadlock).
TEST_F(DifferentialTest, ToySpecsAgreeAcrossAllConfigurations) {
  const Engine engines[] = {Engine::kLevelSync, Engine::kSteal,
                            Engine::kOutOfCore, Engine::kCompact,
                            Engine::kStealCompact};
  const Spec specs[] = {toys::DieHard(), toys::Counter(12, /*with_bad_jump=*/true),
                        toys::Counter(17)};
  for (const Spec& spec : specs) {
    const BfsResult ref = BfsCheck(spec);
    for (const Engine engine : engines) {
      const std::string ctx = spec.name + " " + EngineName(engine);
      ExpectEquivalent(ref, RunEngine(spec, engine, (dir_ / spec.name).string()),
                       ctx);
      if (HasFatalFailure()) {
        return;
      }
    }
  }
  // Known anchors: DieHard violates at depth 6; Counter(17) exhausts with 18
  // states and one deadlock (x == max).
  EXPECT_EQ(BfsCheck(specs[0]).violation->depth, 6u);
  EXPECT_EQ(BfsCheck(specs[2]).distinct_states, 18u);
}

}  // namespace
}  // namespace sandtable
