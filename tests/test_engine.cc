#include <gtest/gtest.h>

#include "src/conformance/raft_harness.h"
#include "src/engine/engine.h"

namespace sandtable {
namespace {

using conformance::MakeRaftEngineFactory;
using conformance::MakeRaftHarness;

std::unique_ptr<engine::Engine> FreshCluster(const std::string& system = "pysyncobj",
                                             bool with_bugs = false) {
  return MakeRaftEngineFactory(MakeRaftHarness(system, with_bugs))();
}

TEST(Engine, StartsAllNodes) {
  auto eng = FreshCluster();
  ASSERT_TRUE(eng->StartAll());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(eng->NodeAlive(i));
    auto state = eng->QueryNodeState(i);
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(state.value()["role"].as_string(), "Follower");
    EXPECT_EQ(state.value()["currentTerm"].as_int(), 0);
  }
}

TEST(Engine, ElectionTimeoutStartsElection) {
  auto eng = FreshCluster();
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));
  auto state = eng->QueryNodeState(0);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value()["role"].as_string(), "Candidate");
  EXPECT_EQ(state.value()["currentTerm"].as_int(), 1);
  // RequestVote buffered to both peers, nothing delivered yet.
  EXPECT_EQ(eng->proxy().TotalInFlight(), 2);
}

TEST(Engine, FullElectionAndReplication) {
  auto eng = FreshCluster();
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));
  // Deliver RV to node 1, its grant back, node 0 becomes leader.
  ASSERT_TRUE(eng->DeliverMessage(0, 1, ""));
  ASSERT_TRUE(eng->DeliverMessage(1, 0, ""));
  auto state = eng->QueryNodeState(0);
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state.value()["role"].as_string(), "Leader");

  // Client proposes through the leader, heartbeat replicates, ack commits.
  Json resp;
  JsonObject req;
  req["op"] = Json(std::string("propose"));
  req["val"] = Json(7);
  ASSERT_TRUE(eng->ClientRequest(0, Json(std::move(req)), &resp));
  EXPECT_TRUE(resp["ok"].as_bool());
  ASSERT_TRUE(eng->FireTimeout(0, "heartbeat"));
  // The channel still holds the initial empty AppendEntries from the moment
  // node 0 became leader; drain FIFO-style: empty AE, then the entry-carrying
  // one, acking each.
  ASSERT_TRUE(eng->DeliverMessage(0, 1, ""));  // initial empty AE
  ASSERT_TRUE(eng->DeliverMessage(1, 0, ""));  // its ack
  ASSERT_TRUE(eng->DeliverMessage(0, 1, ""));  // AE with the entry
  ASSERT_TRUE(eng->DeliverMessage(1, 0, ""));  // ack commits
  state = eng->QueryNodeState(0);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value()["commitIndex"].as_int(), 1);
  EXPECT_EQ(state.value()["log"].size(), 1u);
}

TEST(Engine, ProposeAtFollowerIsRejectedNotFatal) {
  auto eng = FreshCluster();
  ASSERT_TRUE(eng->StartAll());
  Json resp;
  JsonObject req;
  req["op"] = Json(std::string("propose"));
  req["val"] = Json(1);
  ASSERT_TRUE(eng->ClientRequest(1, Json(std::move(req)), &resp));
  EXPECT_FALSE(resp["ok"].as_bool());
  EXPECT_TRUE(eng->NodeAlive(1));
}

TEST(Engine, CrashLosesVolatileKeepsPersistent) {
  auto eng = FreshCluster();
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));
  ASSERT_TRUE(eng->DeliverMessage(0, 1, ""));  // node1 votes (persistent votedFor)
  ASSERT_TRUE(eng->Crash(1));
  EXPECT_FALSE(eng->NodeAlive(1));
  EXPECT_FALSE(eng->QueryNodeState(1).ok());
  // Messages to a crashed node cannot be delivered.
  EXPECT_FALSE(eng->DeliverMessage(0, 1, ""));

  ASSERT_TRUE(eng->Restart(1));
  auto state = eng->QueryNodeState(1);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value()["role"].as_string(), "Follower");
  EXPECT_EQ(state.value()["currentTerm"].as_int(), 1);  // persisted
  EXPECT_EQ(state.value()["votedFor"].as_int(), 0);     // persisted
}

TEST(Engine, RestartRequiresDownNode) {
  auto eng = FreshCluster();
  ASSERT_TRUE(eng->StartAll());
  EXPECT_FALSE(eng->Restart(0));
  EXPECT_FALSE(eng->Crash(7));
}

TEST(Engine, PartitionBlocksTrafficUntilHeal) {
  auto eng = FreshCluster();
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));  // 2 RVs buffered
  ASSERT_TRUE(eng->PartitionStart({0}));
  // Crossing traffic moved to the old-connection buffers: undeliverable while
  // the cut holds, but not lost.
  EXPECT_FALSE(eng->DeliverMessage(0, 1, ""));
  EXPECT_EQ(eng->proxy().TotalInFlight(), 2);
  // New sends across the cut fail; within a side they work.
  ASSERT_TRUE(eng->FireTimeout(1, "election"));
  EXPECT_EQ(eng->proxy().TotalInFlight(), 3);  // +1 for the surviving 1->2 RV
  EXPECT_FALSE(eng->PartitionStart({1}));      // one partition at a time
  ASSERT_TRUE(eng->PartitionHeal());
  EXPECT_FALSE(eng->PartitionHeal());
  // After healing, the delayed RVs surface and can be delivered.
  EXPECT_TRUE(eng->DeliverMessage(0, 1, ""));
}

TEST(Engine, TimeoutRequiresMatchingTimer) {
  auto eng = FreshCluster();
  ASSERT_TRUE(eng->StartAll());
  // Followers have no heartbeat timer.
  EXPECT_FALSE(eng->FireTimeout(0, "heartbeat"));
  EXPECT_TRUE(eng->FireTimeout(0, "election"));
}

TEST(Engine, UdpDropAndDuplicate) {
  auto eng = FreshCluster("raftos", false);
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));
  EXPECT_EQ(eng->proxy().TotalInFlight(), 2);
  ASSERT_TRUE(eng->DuplicateMessage(0, 1, ""));
  EXPECT_EQ(eng->proxy().TotalInFlight(), 3);
  ASSERT_TRUE(eng->DropMessage(0, 1, ""));
  ASSERT_TRUE(eng->DropMessage(0, 1, ""));
  EXPECT_EQ(eng->proxy().TotalInFlight(), 1);
  EXPECT_FALSE(eng->DropMessage(0, 1, ""));
  // Drop/dup are UDP-only commands.
  auto tcp = FreshCluster("pysyncobj", false);
  ASSERT_TRUE(tcp->StartAll());
  ASSERT_TRUE(tcp->FireTimeout(0, "election"));
  EXPECT_FALSE(tcp->DropMessage(0, 1, ""));
}

TEST(Engine, StatsAccumulate) {
  auto eng = FreshCluster();
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));
  ASSERT_TRUE(eng->DeliverMessage(0, 1, ""));
  EXPECT_EQ(eng->stats().timeouts_fired, 1u);
  EXPECT_EQ(eng->stats().messages_delivered, 1u);
  EXPECT_GE(eng->stats().commands_executed, 2u);
  EXPECT_GT(eng->proxy().bytes_proxied(), 0u);
}

TEST(Engine, DelayModelAccounting) {
  conformance::RaftHarness h = MakeRaftHarness("pysyncobj", false);
  h.delay.init_us = 1000;
  h.delay.per_event_us = 10;
  auto eng = MakeRaftEngineFactory(h)();
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));
  EXPECT_EQ(eng->stats().simulated_delay_us, 1010);
}

TEST(Engine, LogLinesCaptured) {
  auto eng = FreshCluster();
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));
  const auto& lines = eng->NodeLogLines(0);
  ASSERT_FALSE(lines.empty());
  bool found = false;
  for (const std::string& line : lines) {
    found = found || line.find("role=Candidate") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Engine, DelayedBufferReplaySelection) {
  auto eng = FreshCluster();
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));  // RV(t1) buffered to 1 and 2
  ASSERT_TRUE(eng->PartitionStart({0}));         // both RVs move to delayed
  ASSERT_TRUE(eng->PartitionHeal());
  // A second identical campaign would need the same term; instead verify the
  // buffer selector: the delayed head delivers only with from_delayed=true
  // once there is also live traffic with different bytes.
  ASSERT_TRUE(eng->FireTimeout(0, "election"));  // RV(t2): live traffic
  int delayed_count = 0;
  for (const auto& m : eng->proxy().Pending()) {
    delayed_count += m.delayed ? 1 : 0;
  }
  EXPECT_EQ(delayed_count, 2);
  // Deliver the delayed RV(t1) to node 1 explicitly.
  ASSERT_TRUE(eng->DeliverMessage(0, 1, "", /*from_delayed=*/true));
  // And the live RV(t2) next.
  ASSERT_TRUE(eng->DeliverMessage(0, 1, "", /*from_delayed=*/false));
  auto s = eng->QueryNodeState(1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value()["currentTerm"].as_int(), 2);
}

TEST(Engine, VirtualClockMonotonicPerNode) {
  auto eng = FreshCluster();
  ASSERT_TRUE(eng->StartAll());
  const int64_t t0 = eng->Clock(0).PeekNs();
  ASSERT_TRUE(eng->FireTimeout(0, "election"));
  EXPECT_GT(eng->Clock(0).PeekNs(), t0);
  // Node 1's clock is independent: it only advanced by its own queries.
  EXPECT_LT(eng->Clock(1).PeekNs(), eng->Clock(0).PeekNs());
}

}  // namespace
}  // namespace sandtable
