// End-to-end test of the LD_PRELOAD interceptor: run an unmodified target
// binary with the preloaded library and verify the engine controls its clock.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/util/strings.h"

#ifndef SANDTABLE_INTERCEPT_SO
#define SANDTABLE_INTERCEPT_SO ""
#endif
#ifndef SANDTABLE_INTERCEPT_TARGET
#define SANDTABLE_INTERCEPT_TARGET ""
#endif

namespace sandtable {
namespace {

std::string RunTarget(const std::string& env) {
  const std::string cmd = env + " LD_PRELOAD=" + SANDTABLE_INTERCEPT_SO + " " +
                          SANDTABLE_INTERCEPT_TARGET + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return "";
  }
  std::string out;
  char buf[256];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) {
    out += buf;
  }
  pclose(pipe);
  return out;
}

int64_t Extract(const std::string& out, const std::string& key) {
  const size_t pos = out.find(key + "=");
  if (pos == std::string::npos) {
    return -1;
  }
  return std::atoll(out.c_str() + pos + key.size() + 1);
}

TEST(Interceptor, VirtualClockStartsAtConfiguredTime) {
  const std::string out = RunTarget("SANDTABLE_VCLOCK=1 SANDTABLE_VCLOCK_START=5000000000");
  ASSERT_FALSE(out.empty()) << "target did not run";
  const int64_t t0 = Extract(out, "t0");
  EXPECT_GE(t0, 5000000000);
  EXPECT_LT(t0, 5000001000);  // within a few auto-increments of the start
}

TEST(Interceptor, SleepAdvancesVirtualTimeInstantly) {
  const std::string out = RunTarget("SANDTABLE_VCLOCK=1 SANDTABLE_VCLOCK_START=0");
  ASSERT_FALSE(out.empty());
  const int64_t elapsed = Extract(out, "elapsed");
  // The 100ms nanosleep advanced virtual time by exactly its duration (plus
  // per-query increments) without really sleeping.
  EXPECT_GE(elapsed, 100000000);
  EXPECT_LT(elapsed, 100000100);
}

TEST(Interceptor, ClockIsMonotonicAcrossQueries) {
  const std::string out = RunTarget("SANDTABLE_VCLOCK=1");
  ASSERT_FALSE(out.empty());
  EXPECT_GT(Extract(out, "t1"), Extract(out, "t0"));
}

TEST(Interceptor, ControlFileAdvancesClock) {
  const std::string control = StrFormat("/tmp/sandtable_vclock_%d", getpid());
  {
    std::ofstream f(control);
    f << 42000000000LL;
  }
  const std::string out =
      RunTarget("SANDTABLE_VCLOCK=1 SANDTABLE_VCLOCK_FILE=" + control);
  std::remove(control.c_str());
  ASSERT_FALSE(out.empty());
  // The engine command channel jumped the clock to 42s.
  EXPECT_GE(Extract(out, "t0"), 42000000000LL);
}

TEST(Interceptor, PassthroughWhenDisabled) {
  const std::string out = RunTarget("SANDTABLE_VCLOCK=0");
  ASSERT_FALSE(out.empty());
  // The real monotonic clock is far past zero and the real sleep takes
  // roughly the requested 100ms.
  EXPECT_GT(Extract(out, "t0"), 1000000000LL);
  EXPECT_GE(Extract(out, "elapsed"), 90000000);
}

}  // namespace
}  // namespace sandtable
