#include <gtest/gtest.h>

#include "src/util/json.h"

namespace sandtable {
namespace {

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(Json(nullptr).Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(int64_t{-42}).Dump(), "-42");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(Json, EscapesControlCharacters) {
  EXPECT_EQ(Json("a\"b\\c\nd").Dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json(std::string("\x01")).Dump(), "\"\\u0001\"");
}

TEST(Json, ObjectKeysSortedDeterministically) {
  JsonObject o;
  o["b"] = Json(2);
  o["a"] = Json(1);
  EXPECT_EQ(Json(std::move(o)).Dump(), "{\"a\":1,\"b\":2}");
}

TEST(Json, NestedDump) {
  JsonObject o;
  o["xs"] = Json(JsonArray{Json(1), Json("two"), Json(nullptr)});
  EXPECT_EQ(Json(std::move(o)).Dump(), "{\"xs\":[1,\"two\",null]}");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::Parse("null").value().is_null());
  EXPECT_EQ(Json::Parse("true").value().as_bool(), true);
  EXPECT_EQ(Json::Parse("-17").value().as_int(), -17);
  EXPECT_DOUBLE_EQ(Json::Parse("2.5").value().as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3").value().as_double(), 1000.0);
  EXPECT_EQ(Json::Parse("\"x\\ny\"").value().as_string(), "x\ny");
}

TEST(Json, ParseUnicodeEscape) {
  EXPECT_EQ(Json::Parse("\"\\u0041\"").value().as_string(), "A");
}

TEST(Json, ParseNested) {
  auto r = Json::Parse(R"({"a":[1,{"b":null}],"c":"d"})");
  ASSERT_TRUE(r.ok());
  const Json& j = r.value();
  EXPECT_EQ(j["a"][0].as_int(), 1);
  EXPECT_TRUE(j["a"][1]["b"].is_null());
  EXPECT_EQ(j["c"].as_string(), "d");
}

TEST(Json, RoundTripStability) {
  const std::string text = R"({"arr":[1,2.5,"s",true,null],"obj":{"k":[{}]}})";
  auto once = Json::Parse(text);
  ASSERT_TRUE(once.ok());
  auto twice = Json::Parse(once.value().Dump());
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(once.value(), twice.value());
}

TEST(Json, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
}

TEST(Json, MissingKeyIsNull) {
  auto r = Json::Parse("{\"a\":1}");
  ASSERT_TRUE(r.ok());
  // Const access must not insert.
  const Json& j = r.value();
  EXPECT_TRUE(j["nope"].is_null());
  EXPECT_FALSE(j.contains("nope"));
  EXPECT_TRUE(j.contains("a"));
}

TEST(Json, PrettyPrintIndents) {
  JsonObject o;
  o["a"] = Json(JsonArray{Json(1)});
  const std::string pretty = Json(std::move(o)).DumpPretty();
  EXPECT_NE(pretty.find("\n  \"a\": [\n    1\n  ]\n"), std::string::npos);
}

TEST(Json, IntDoubleInterop) {
  EXPECT_EQ(Json(2.0).as_int(), 2);
  EXPECT_DOUBLE_EQ(Json(int64_t{3}).as_double(), 3.0);
}

}  // namespace
}  // namespace sandtable
