#include <gtest/gtest.h>

#include "src/lin/linearizability.h"

namespace sandtable {
namespace {

using lin::CheckLinearizable;
using lin::Operation;

Operation Put(int64_t v, int64_t invoke, int64_t response, int client = 0) {
  Operation op;
  op.type = Operation::Type::kPut;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  op.client = client;
  return op;
}

Operation Get(int64_t v, int64_t invoke, int64_t response, int client = 0) {
  Operation op;
  op.type = Operation::Type::kGet;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  op.client = client;
  return op;
}

TEST(Linearizability, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(CheckLinearizable({}).linearizable);
}

TEST(Linearizability, SequentialHistory) {
  const auto r = CheckLinearizable({Put(1, 0, 1), Get(1, 2, 3), Put(2, 4, 5), Get(2, 6, 7)});
  EXPECT_TRUE(r.linearizable);
  ASSERT_EQ(r.witness.size(), 4u);
  EXPECT_EQ(r.witness[0], 0u);
}

TEST(Linearizability, ReadOfInitialValue) {
  EXPECT_TRUE(CheckLinearizable({Get(0, 0, 1)}).linearizable);
  EXPECT_TRUE(CheckLinearizable({Get(7, 0, 1)}, 7).linearizable);
  EXPECT_FALSE(CheckLinearizable({Get(7, 0, 1)}, 0).linearizable);
}

TEST(Linearizability, StaleReadAfterResponseIsRejected) {
  // put(1) completed before the get was invoked, yet the get returned 0.
  const auto r = CheckLinearizable({Put(1, 0, 1), Get(0, 2, 3)});
  EXPECT_FALSE(r.linearizable);
}

TEST(Linearizability, ConcurrentReadMayReturnEitherValue) {
  // get overlaps put(1): both results are legal.
  EXPECT_TRUE(CheckLinearizable({Put(1, 0, 10), Get(0, 2, 5)}).linearizable);
  EXPECT_TRUE(CheckLinearizable({Put(1, 0, 10), Get(1, 2, 5)}).linearizable);
}

TEST(Linearizability, ReadYourWritesPerRealTime) {
  // Two sequential reads around a concurrent put must not go backwards:
  // get->1 completing before get->0 starts is non-linearizable.
  const auto bad =
      CheckLinearizable({Put(1, 0, 20), Get(1, 2, 4, 1), Get(0, 6, 8, 1)});
  EXPECT_FALSE(bad.linearizable);
  const auto good =
      CheckLinearizable({Put(1, 0, 20), Get(0, 2, 4, 1), Get(1, 6, 8, 1)});
  EXPECT_TRUE(good.linearizable);
}

TEST(Linearizability, WriteOrderResolvedByReads) {
  // Two concurrent puts; reads fix the order: 2 then 1.
  const auto r = CheckLinearizable(
      {Put(1, 0, 10), Put(2, 0, 10), Get(2, 12, 13), Get(1, 14, 15)});
  EXPECT_FALSE(r.linearizable);  // after both puts responded, 2 then 1 impossible
  const auto ok = CheckLinearizable(
      {Put(1, 0, 10), Put(2, 0, 10), Get(1, 12, 13), Get(1, 14, 15)});
  EXPECT_TRUE(ok.linearizable);
}

TEST(Linearizability, WitnessIsLegal) {
  const std::vector<Operation> history = {Put(1, 0, 5), Put(2, 1, 6), Get(2, 7, 8),
                                          Get(2, 9, 10)};
  const auto r = CheckLinearizable(history);
  ASSERT_TRUE(r.linearizable);
  // Replay the witness and check the register semantics directly.
  int64_t value = 0;
  for (size_t idx : r.witness) {
    const Operation& op = history[idx];
    if (op.type == Operation::Type::kPut) {
      value = op.value;
    } else {
      EXPECT_EQ(op.value, value);
    }
  }
}

TEST(Linearizability, DeepHistoryTerminates) {
  // 20 alternating operations with full concurrency: memoization keeps the
  // search tractable.
  std::vector<Operation> history;
  for (int i = 0; i < 10; ++i) {
    history.push_back(Put(i, 0, 100));
    history.push_back(Get(i, 0, 100));
  }
  const auto r = CheckLinearizable(history);
  EXPECT_TRUE(r.linearizable);
  EXPECT_GT(r.states_explored, 0u);
}

}  // namespace
}  // namespace sandtable
