#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "src/mc/bfs.h"
#include "src/mc/expand.h"
#include "src/mc/random_walk.h"
#include "src/mc/reconstruct.h"
#include "src/mc/stateless.h"
#include "tests/toy_specs.h"

namespace sandtable {
namespace {

TEST(Bfs, DieHardCounterexampleIsMinimal) {
  const Spec spec = toys::DieHard();
  BfsOptions opts;
  const BfsResult r = BfsCheck(spec, opts);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->invariant, "BigNotFour");
  // The classic puzzle needs exactly 6 pours; BFS guarantees minimality.
  EXPECT_EQ(r.violation->depth, 6u);
  ASSERT_EQ(r.violation->trace.size(), 7u);
  // The trace is genuine: final state has big == 4.
  EXPECT_EQ(r.violation->trace.back().state.field("big").int_v(), 4);
  // And each step follows from its predecessor via some action.
  for (size_t i = 1; i < r.violation->trace.size(); ++i) {
    auto succs = ExpandAll(spec, r.violation->trace[i - 1].state, nullptr);
    bool found = false;
    for (const Successor& s : succs) {
      found = found || s.state == r.violation->trace[i].state;
    }
    EXPECT_TRUE(found) << "disconnected trace at step " << i;
  }
}

TEST(Bfs, DieHardExhaustsWithoutInvariant) {
  Spec spec = toys::DieHard();
  spec.invariants.clear();
  const BfsResult r = BfsCheck(spec, {});
  EXPECT_FALSE(r.violation.has_value());
  EXPECT_TRUE(r.exhausted);
  // Reachable space of the two-jug puzzle: 4 x 6 = 24 minus unreachable
  // combinations = 16 states.
  EXPECT_EQ(r.distinct_states, 16u);
}

TEST(Bfs, CounterExhaustsAndCountsDepth) {
  const Spec spec = toys::Counter(10);
  const BfsResult r = BfsCheck(spec, {});
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.distinct_states, 11u);
  EXPECT_EQ(r.depth_reached, 10u);
  EXPECT_EQ(r.deadlock_states, 1u);  // the final state has no successor
  EXPECT_FALSE(r.violation.has_value());
}

TEST(Bfs, TransitionInvariantViolationDetected) {
  const Spec spec = toys::Counter(10, /*with_bad_jump=*/true);
  const BfsResult r = BfsCheck(spec, {});
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->invariant, "Monotonic");
  EXPECT_TRUE(r.violation->is_transition_invariant);
  // Jump fires from x==3: depth 4 (3 increments + the jump).
  EXPECT_EQ(r.violation->depth, 4u);
  EXPECT_EQ(r.violation->trace.back().state.field("x").int_v(), 1);
  EXPECT_EQ(r.violation->trace.back().label.action, "Jump");
}

TEST(Bfs, MaxDepthBounds) {
  const Spec spec = toys::Counter(100);
  BfsOptions opts;
  opts.max_depth = 5;
  const BfsResult r = BfsCheck(spec, opts);
  EXPECT_EQ(r.distinct_states, 6u);  // x = 0..5
  EXPECT_FALSE(r.exhausted);
}

TEST(Bfs, MaxStatesBounds) {
  const Spec spec = toys::Counter(1000);
  BfsOptions opts;
  opts.max_distinct_states = 50;
  const BfsResult r = BfsCheck(spec, opts);
  EXPECT_TRUE(r.hit_state_limit);
  EXPECT_EQ(r.distinct_states, 50u);
}

TEST(Bfs, ConstraintBoundsExpansion) {
  Spec spec = toys::Counter(1000);
  spec.constraint = [](const State& s) { return s.field("x").int_v() <= 7; };
  const BfsResult r = BfsCheck(spec, {});
  EXPECT_TRUE(r.exhausted);
  // States 0..7 expand; state 8 is recorded (reached from 7) but not expanded.
  EXPECT_EQ(r.distinct_states, 9u);
}

TEST(Bfs, SymmetryReductionShrinksSpace) {
  const Spec spec = toys::TokenRing(3, 3);
  BfsOptions with;
  with.use_symmetry = true;
  BfsOptions without;
  without.use_symmetry = false;
  const BfsResult rs = BfsCheck(spec, with);
  const BfsResult rn = BfsCheck(spec, without);
  EXPECT_TRUE(rs.exhausted);
  EXPECT_TRUE(rn.exhausted);
  // Distributions of 3 tokens over 3 nodes: 10 states; up to permutation:
  // partitions of 3 into at most 3 parts = 3 ({3},{2,1},{1,1,1}).
  EXPECT_EQ(rn.distinct_states, 10u);
  EXPECT_EQ(rs.distinct_states, 3u);
}

TEST(Bfs, CoverageCollected) {
  const Spec spec = toys::Counter(10);
  const BfsResult r = BfsCheck(spec, {});
  EXPECT_EQ(r.coverage.branches.size(), 2u);  // Inc/even, Inc/odd
  EXPECT_GT(r.coverage.transitions, 0u);
  EXPECT_EQ(r.coverage.event_counts[static_cast<int>(EventKind::kClientRequest)],
            r.coverage.transitions);
}

TEST(Bfs, ProgressReporterEmitsParsableJson) {
  const Spec spec = toys::Counter(100);
  std::ostringstream sink;
  obs::ProgressOptions popts;
  popts.every_states = 10;
  obs::ProgressReporter reporter(&sink, popts);
  BfsOptions opts;
  opts.progress = &reporter;
  BfsCheck(spec, opts);
  EXPECT_GE(reporter.lines_emitted(), 9u);
  // Every emitted line is a self-contained JSON record of type "progress".
  std::istringstream lines(sink.str());
  std::string line;
  uint64_t parsed = 0;
  while (std::getline(lines, line)) {
    auto rec = Json::Parse(line);
    ASSERT_TRUE(rec.ok()) << line;
    EXPECT_EQ(rec.value()["type"].as_string(), "progress");
    EXPECT_EQ(rec.value()["engine"].as_string(), "bfs");
    ++parsed;
  }
  EXPECT_EQ(parsed, reporter.lines_emitted());
}

TEST(Bfs, MetricsRegistryCountsStates) {
  const Spec spec = toys::Counter(10);
  obs::MetricsRegistry registry;
  BfsOptions opts;
  opts.metrics = &registry;
  const BfsResult r = BfsCheck(spec, opts);
  const auto snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("states.distinct"), r.distinct_states);
  EXPECT_EQ(snap.counters.at("states.deadlock"), r.deadlock_states);
  EXPECT_GT(snap.counters.at("expand.calls"), 0u);
  EXPECT_GT(snap.counters.at("invariants.checked"), 0u);
}

// Positive control for the re-search reconstruction: a genuinely reachable
// fingerprint is regenerated within the bound and replayed into a full trace.
TEST(Reconstruct, ResearchFindsReachableTarget) {
  const Spec spec = toys::Counter(5);
  const std::vector<Successor> succs =
      ExpandAll(spec, spec.init_states[0], nullptr);
  ASSERT_FALSE(succs.empty());
  const uint64_t target = Fingerprint(spec, succs[0].state, false);
  std::string error = "sentinel";
  const std::vector<TraceStep> trace =
      ReconstructTraceResearch(spec, target, /*max_depth=*/3, false, &error);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].state, spec.init_states[0]);
  EXPECT_EQ(trace[1].state, succs[0].state);
  EXPECT_EQ(error, "sentinel");  // untouched on success
}

// Regression: a miss (only possible under a 64-bit fingerprint collision,
// which --hash-compact explicitly accepts as a mode of operation) must come
// back as an empty trace plus an explanation — never a process abort, since
// sandtable_serve runs many tenants' check jobs in one daemon.
TEST(Reconstruct, ResearchMissDegradesInsteadOfAborting) {
  const Spec spec = toys::Counter(5);
  std::string error;
  const std::vector<TraceStep> trace = ReconstructTraceResearch(
      spec, /*target=*/0x5eed5eed5eed5eedull, /*max_depth=*/8, false, &error);
  EXPECT_TRUE(trace.empty());
  EXPECT_NE(error.find("fingerprint collision"), std::string::npos) << error;
}

// The degraded violation stays sound and serializable: empty trace, depth 0,
// and the trace_error marker present in JSON (absent on the normal path).
TEST(Reconstruct, TraceErrorSerializedOnlyWhenSet) {
  Violation v;
  v.invariant = "Inv";
  EXPECT_FALSE(v.ToJson().contains("trace_error"));
  v.trace_error = "re-search reconstruction: target fingerprint unreachable";
  const Json j = v.ToJson();
  ASSERT_TRUE(j.contains("trace_error"));
  EXPECT_EQ(j["trace_error"].as_string(), v.trace_error);
  EXPECT_EQ(j["depth"].as_int(), 0);
}

TEST(RandomWalk, RespectsMaxDepth) {
  const Spec spec = toys::Counter(1000);
  Rng rng(1);
  WalkOptions opts;
  opts.max_depth = 20;
  const WalkResult r = RandomWalk(spec, opts, rng);
  EXPECT_EQ(r.depth, 20u);
  // A walk cut off by the depth limit is capped, not deadlocked: the final
  // state still had successors.
  EXPECT_TRUE(r.hit_depth_limit);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.ToJson()["terminated"].as_string(), "depth_limit");
}

TEST(RandomWalk, StopsAtDeadlock) {
  const Spec spec = toys::Counter(5);
  Rng rng(1);
  WalkOptions opts;
  const WalkResult r = RandomWalk(spec, opts, rng);
  EXPECT_EQ(r.depth, 5u);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_FALSE(r.hit_depth_limit);
  EXPECT_EQ(r.ToJson()["terminated"].as_string(), "deadlock");
}

TEST(RandomWalk, CollectsTrace) {
  const Spec spec = toys::Counter(5);
  Rng rng(2);
  WalkOptions opts;
  opts.collect_trace = true;
  const WalkResult r = RandomWalk(spec, opts, rng);
  ASSERT_EQ(r.trace.size(), 6u);
  EXPECT_EQ(r.trace.front().state.field("x").int_v(), 0);
  EXPECT_EQ(r.trace.back().state.field("x").int_v(), 5);
}

// The walk must be a pure function of (spec, options, seed): simulate runs
// report a seed precisely so a violating walk can be reproduced later.
TEST(RandomWalk, IdenticalSeedsYieldIdenticalTraces) {
  const Spec spec = toys::DieHard();  // several enabled actions per state
  WalkOptions opts;
  opts.collect_trace = true;
  opts.max_depth = 12;
  auto run = [&](uint64_t seed) {
    Rng rng(seed);
    return RandomWalk(spec, opts, rng);
  };
  for (uint64_t seed : {0u, 7u, 42u}) {
    const WalkResult a = run(seed);
    const WalkResult b = run(seed);
    ASSERT_EQ(a.trace.size(), b.trace.size()) << "seed " << seed;
    for (size_t i = 0; i < a.trace.size(); ++i) {
      EXPECT_EQ(a.trace[i].label.action, b.trace[i].label.action) << "seed " << seed;
      EXPECT_EQ(a.trace[i].label.params, b.trace[i].label.params) << "seed " << seed;
      EXPECT_EQ(a.trace[i].state, b.trace[i].state) << "seed " << seed;
    }
  }
  // Distinct seeds explore distinct schedules (the point of seeding per walk).
  std::set<std::string> distinct;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    std::string key;
    for (const auto& ev : run(seed).trace) {
      key += ev.label.action + "(" + ev.label.params.Dump() + ");";
    }
    distinct.insert(key);
  }
  EXPECT_GT(distinct.size(), 1u);
}

TEST(RandomWalk, HonoursConstraint) {
  Spec spec = toys::Counter(1000);
  spec.constraint = [](const State& s) { return s.field("x").int_v() <= 3; };
  Rng rng(3);
  const WalkResult r = RandomWalk(spec, {}, rng);
  EXPECT_EQ(r.depth, 3u);
  EXPECT_TRUE(r.deadlocked);
}

TEST(RandomWalk, DetectsTransitionViolation) {
  const Spec spec = toys::Counter(4, /*with_bad_jump=*/true);
  WalkOptions opts;
  opts.check_transition_invariants = true;
  opts.collect_trace = true;
  bool found = false;
  for (uint64_t seed = 0; seed < 64 && !found; ++seed) {
    Rng rng(seed);
    const WalkResult r = RandomWalk(spec, opts, rng);
    if (r.violation.has_value()) {
      found = true;
      EXPECT_EQ(r.violation->invariant, "Monotonic");
      EXPECT_FALSE(r.violation->trace.empty());
    }
  }
  EXPECT_TRUE(found);
}

TEST(Stateless, RedundancyExceedsStateful) {
  const Spec spec = toys::DieHard();
  StatelessOptions opts;
  opts.max_depth = 8;
  const StatelessResult r = StatelessEnumerate(spec, opts);
  EXPECT_TRUE(r.exhausted);
  // Depth-8 path enumeration walks far more edges than there are states.
  EXPECT_LE(r.distinct_states, 16u);
  EXPECT_GT(r.transitions_executed, r.distinct_states * 10);
  EXPECT_GT(r.RedundancyFactor(), 10.0);
}

TEST(Stateless, BudgetStopsEnumeration) {
  const Spec spec = toys::DieHard();
  StatelessOptions opts;
  opts.max_depth = 20;
  opts.max_transitions = 100;
  const StatelessResult r = StatelessEnumerate(spec, opts);
  EXPECT_FALSE(r.exhausted);
  EXPECT_GE(r.transitions_executed, 100u);
}

TEST(Expand, CanonicalizeIsPermutationInvariant) {
  const Spec spec = toys::TokenRing(3, 2);
  const State s = spec.init_states[0];
  // Move all tokens to node 2 vs node 1: same canonical form.
  const Value held = s.field("held");
  const State a = s.WithField(
      "held", Value::Fun({{Value::Model("p", 0), Value::Int(0)},
                          {Value::Model("p", 1), Value::Int(2)},
                          {Value::Model("p", 2), Value::Int(0)}}));
  const State b = s.WithField(
      "held", Value::Fun({{Value::Model("p", 0), Value::Int(0)},
                          {Value::Model("p", 1), Value::Int(0)},
                          {Value::Model("p", 2), Value::Int(2)}}));
  EXPECT_EQ(Canonicalize(spec, a), Canonicalize(spec, b));
  EXPECT_EQ(Fingerprint(spec, a, true), Fingerprint(spec, b, true));
  EXPECT_NE(Fingerprint(spec, a, false), Fingerprint(spec, b, false));
}

}  // namespace
}  // namespace sandtable
