// Counterexample minimization (src/minimize/) and its guided-replay oracle
// (src/trace/spec_replay.h): property tests over toy-spec violations, the
// domain-aware reduction passes, and the golden-trace corpus round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/mc/bfs.h"
#include "src/mc/random_walk.h"
#include "src/minimize/corpus.h"
#include "src/minimize/minimize.h"
#include "src/trace/spec_replay.h"
#include "src/util/rng.h"
#include "tests/toy_specs.h"

namespace sandtable {
namespace {

using minimize::MinimizeCounterexample;
using minimize::MinimizeOptions;
using minimize::MinimizeResult;
using trace::ReplayLabels;
using trace::SpecReplayOutcome;
using trace::SpecReplayResult;

std::vector<ActionLabel> Labels(const std::vector<TraceStep>& trace) {
  std::vector<ActionLabel> labels;
  for (size_t i = 1; i < trace.size(); ++i) {
    labels.push_back(trace[i].label);
  }
  return labels;
}

// A counter with a monotonicity bug (Jump) plus harmless noise events in the
// failure vocabulary the domain passes target: no-op network faults and
// timeouts, and a partition/heal toggle. Jump only fires once a partition
// happened, so a Cut event is essential but its Heal partner is not; Heal is
// only enabled while cut, which makes the pair undeletable one at a time.
Spec NoisyCounter(bool jump_needs_cut) {
  Spec spec;
  spec.name = "noisycounter";
  spec.init_states.push_back(
      Value::Record({{"x", Value::Int(0)}, {"cut", Value::Bool(false)}}));
  auto x = [](const State& s) { return s.field("x").int_v(); };
  auto cut = [](const State& s) { return s.field("cut").bool_v(); };
  spec.actions.push_back(
      {"Inc", EventKind::kClientRequest, [x](const State& s, ActionContext& ctx) {
         if (x(s) < 6) {
           ctx.Emit(s.WithField("x", Value::Int(x(s) + 1)));
         }
       }});
  spec.actions.push_back({"Jump", EventKind::kInternal,
                          [=](const State& s, ActionContext& ctx) {
                            if (x(s) == 3 && (!jump_needs_cut || cut(s))) {
                              ctx.Emit(s.WithField("x", Value::Int(1)));
                            }
                          }});
  spec.actions.push_back(
      {"DropNoise", EventKind::kNetworkFault, [](const State& s, ActionContext& ctx) {
         ctx.Emit(s, Json(JsonObject{{"i", Json(0)}}));
       }});
  spec.actions.push_back(
      {"Tick", EventKind::kTimeout, [](const State& s, ActionContext& ctx) {
         ctx.Emit(s, Json(JsonObject{{"node", Json(0)}}));
       }});
  spec.actions.push_back(
      {"Cut", EventKind::kPartition, [cut](const State& s, ActionContext& ctx) {
         if (!cut(s)) {
           // All non-empty sides of {0, 1}, like the raft/zab network module.
           for (const JsonArray& side :
                {JsonArray{Json(0)}, JsonArray{Json(1)}, JsonArray{Json(0), Json(1)}}) {
             ctx.Emit(s.WithField("cut", Value::Bool(true)),
                      Json(JsonObject{{"side", Json(side)}}));
           }
         }
       }});
  spec.actions.push_back(
      {"Heal", EventKind::kRecover, [cut](const State& s, ActionContext& ctx) {
         if (cut(s)) {
           ctx.Emit(s.WithField("cut", Value::Bool(false)));
         }
       }});
  spec.transition_invariants.push_back(
      {"Monotonic", [x](const State& prev, const ActionLabel&, const State& next) {
         return x(next) >= x(prev);
       }});
  return spec;
}

ActionLabel Lbl(const char* action, EventKind kind, Json params = Json(JsonObject{})) {
  ActionLabel l;
  l.action = action;
  l.kind = kind;
  l.params = std::move(params);
  return l;
}

// Build a Violation by replaying labels from the spec's initial state.
Violation ViolationFromLabels(const Spec& spec, const std::vector<ActionLabel>& labels) {
  const SpecReplayResult r = ReplayLabels(spec, 0, labels);
  EXPECT_EQ(r.outcome, SpecReplayOutcome::kViolation) << r.stuck_reason;
  Violation v;
  v.invariant = r.invariant;
  v.is_transition_invariant = r.is_transition_invariant;
  v.trace = r.trace;
  v.depth = r.trace.size() - 1;
  return v;
}

TEST(SpecReplay, ReplaysBfsCounterexampleExactly) {
  const Spec spec = toys::DieHard();
  const BfsResult r = BfsCheck(spec, {});
  ASSERT_TRUE(r.violation.has_value());
  const SpecReplayResult rr = ReplayLabels(spec, 0, Labels(r.violation->trace));
  EXPECT_EQ(rr.outcome, SpecReplayOutcome::kViolation);
  EXPECT_EQ(rr.invariant, "BigNotFour");
  EXPECT_FALSE(rr.is_transition_invariant);
  ASSERT_EQ(rr.trace.size(), r.violation->trace.size());
  for (size_t i = 0; i < rr.trace.size(); ++i) {
    EXPECT_TRUE(rr.trace[i].state == r.violation->trace[i].state) << "step " << i;
  }
}

TEST(SpecReplay, StuckOnUnknownActionAndUnmatchedParams) {
  const Spec spec = toys::Counter(5);
  SpecReplayResult r = ReplayLabels(spec, 0, {Lbl("Nope", EventKind::kInternal)});
  EXPECT_EQ(r.outcome, SpecReplayOutcome::kStuck);
  EXPECT_NE(r.stuck_reason.find("unknown action"), std::string::npos);

  // Inc exists but emits empty params; a label with junk params cannot match.
  r = ReplayLabels(spec, 0,
                   {Lbl("Inc", EventKind::kClientRequest,
                        Json(JsonObject{{"bogus", Json(1)}}))});
  EXPECT_EQ(r.outcome, SpecReplayOutcome::kStuck);
  EXPECT_NE(r.stuck_reason.find("no successor"), std::string::npos);
}

TEST(SpecReplay, CompletesWhenNothingFires) {
  const Spec spec = toys::Counter(5);
  const SpecReplayResult r =
      ReplayLabels(spec, 0, {Lbl("Inc", EventKind::kClientRequest),
                             Lbl("Inc", EventKind::kClientRequest)});
  EXPECT_EQ(r.outcome, SpecReplayOutcome::kCompleted);
  EXPECT_EQ(r.steps_applied, 2u);
  EXPECT_EQ(r.trace.back().state.field("x").int_v(), 2);
}

TEST(SpecReplay, TruncatesAtFirstViolation) {
  const Spec spec = toys::Counter(10, /*with_bad_jump=*/true);
  // Three increments, the violating jump, then two more increments: the
  // replay must stop at the jump and report the prefix.
  std::vector<ActionLabel> labels(3, Lbl("Inc", EventKind::kClientRequest));
  labels.push_back(Lbl("Jump", EventKind::kInternal));
  labels.push_back(Lbl("Inc", EventKind::kClientRequest));
  const SpecReplayResult r = ReplayLabels(spec, 0, labels);
  EXPECT_EQ(r.outcome, SpecReplayOutcome::kViolation);
  EXPECT_EQ(r.invariant, "Monotonic");
  EXPECT_TRUE(r.is_transition_invariant);
  EXPECT_EQ(r.steps_applied, 4u);
  EXPECT_EQ(r.trace.size(), 5u);
}

TEST(SpecReplay, InvariantClassNarrowing) {
  const Spec spec = toys::Counter(10, /*with_bad_jump=*/true);
  std::vector<ActionLabel> labels(3, Lbl("Inc", EventKind::kClientRequest));
  labels.push_back(Lbl("Jump", EventKind::kInternal));
  trace::SpecReplayOptions opts;
  opts.check_transition_invariants = false;
  const SpecReplayResult r = ReplayLabels(spec, 0, labels, opts);
  // With the transition class switched off the jump goes unnoticed.
  EXPECT_EQ(r.outcome, SpecReplayOutcome::kCompleted);
}

// The core ddmin properties, over many random violating traces: the result
// still violates the same invariant, never got longer, and re-minimizing is
// a fixed point.
TEST(Minimize, RandomWalkViolationsShrinkSoundly) {
  // NoisyCounter walks violate often (~half the seeds) with raw traces of
  // ~15 events padded with noise; the true minimum is Inc,Inc,Inc,Jump = 4.
  const Spec spec = NoisyCounter(/*jump_needs_cut=*/false);
  WalkOptions wopts;
  wopts.max_depth = 40;
  wopts.collect_trace = true;
  wopts.check_transition_invariants = true;
  int violations = 0;
  for (uint64_t seed = 1; seed <= 40 && violations < 12; ++seed) {
    Rng rng(seed);
    const WalkResult w = RandomWalk(spec, wopts, rng);
    if (!w.violation.has_value()) {
      continue;
    }
    ++violations;
    const MinimizeResult m = MinimizeCounterexample(spec, *w.violation);
    ASSERT_TRUE(m.input_reproduced) << "seed " << seed;
    EXPECT_LE(m.events_after, m.events_before) << "seed " << seed;
    EXPECT_EQ(m.violation.invariant, "Monotonic");
    // The minimizer cannot go below the true minimum, and ddmin + the domain
    // passes + pair deletion reliably reach it here.
    EXPECT_EQ(m.events_after, 4u) << "seed " << seed;
    // The minimized labels genuinely replay to the violation.
    const SpecReplayResult rr = ReplayLabels(spec, 0, Labels(m.trace));
    EXPECT_EQ(rr.outcome, SpecReplayOutcome::kViolation);
    EXPECT_EQ(rr.invariant, "Monotonic");
    // Idempotence: minimizing the minimum is a fixed point.
    const MinimizeResult m2 = MinimizeCounterexample(spec, m.violation);
    ASSERT_TRUE(m2.input_reproduced);
    EXPECT_EQ(m2.events_after, m.events_after);
    ASSERT_EQ(m2.trace.size(), m.trace.size());
    for (size_t i = 1; i < m.trace.size(); ++i) {
      EXPECT_EQ(m2.trace[i].label.action, m.trace[i].label.action);
      EXPECT_TRUE(m2.trace[i].label.params == m.trace[i].label.params);
    }
  }
  ASSERT_GE(violations, 5) << "walks found too few violations to test anything";
}

TEST(Minimize, BfsTraceIsAlreadyAFixedPoint) {
  // BFS counterexamples are depth-minimal, so the minimizer must return them
  // unchanged — this is the property the corpus update script relies on.
  const Spec spec = toys::Counter(10, /*with_bad_jump=*/true);
  const BfsResult r = BfsCheck(spec, {});
  ASSERT_TRUE(r.violation.has_value());
  const MinimizeResult m = MinimizeCounterexample(spec, *r.violation);
  ASSERT_TRUE(m.input_reproduced);
  EXPECT_EQ(m.events_before, 4u);
  EXPECT_EQ(m.events_after, 4u);
  EXPECT_TRUE(m.violation.is_transition_invariant);
  EXPECT_EQ(m.violation.invariant, "Monotonic");
}

TEST(Minimize, DomainPassesStripNoise) {
  const Spec spec = NoisyCounter(/*jump_needs_cut=*/false);
  // A violating trace padded with droppable noise: faults, a timeout run and
  // a partition/heal pair, none of which the violation needs.
  const std::vector<ActionLabel> noisy = {
      Lbl("DropNoise", EventKind::kNetworkFault, Json(JsonObject{{"i", Json(0)}})),
      Lbl("Inc", EventKind::kClientRequest),
      Lbl("Tick", EventKind::kTimeout, Json(JsonObject{{"node", Json(0)}})),
      Lbl("Tick", EventKind::kTimeout, Json(JsonObject{{"node", Json(0)}})),
      Lbl("Cut", EventKind::kPartition,
          Json(JsonObject{{"side", Json(JsonArray{Json(0)})}})),
      Lbl("Inc", EventKind::kClientRequest),
      Lbl("Heal", EventKind::kRecover),
      Lbl("Inc", EventKind::kClientRequest),
      Lbl("DropNoise", EventKind::kNetworkFault, Json(JsonObject{{"i", Json(0)}})),
      Lbl("Jump", EventKind::kInternal),
  };
  const Violation v = ViolationFromLabels(spec, noisy);
  const MinimizeResult m = MinimizeCounterexample(spec, v);
  ASSERT_TRUE(m.input_reproduced);
  // Only the three increments and the jump are essential.
  EXPECT_EQ(m.events_after, 4u);
  EXPECT_GT(m.domain_removed + m.ddmin_removed, 0u);
  EXPECT_EQ(m.events_before - m.events_after,
            m.domain_removed + m.ddmin_removed);
  for (const TraceStep& step : m.trace) {
    EXPECT_NE(step.label.kind, EventKind::kNetworkFault);
    EXPECT_NE(step.label.kind, EventKind::kTimeout);
  }
}

TEST(Minimize, PartitionPairAndSideShrink) {
  const Spec spec = NoisyCounter(/*jump_needs_cut=*/true);
  // Here Jump requires an earlier Cut, so the Cut event itself is essential
  // — but its wide side set is not, and the Heal after the jump-enabling
  // window is pure noise.
  const std::vector<ActionLabel> labels = {
      Lbl("Inc", EventKind::kClientRequest),
      Lbl("Inc", EventKind::kClientRequest),
      Lbl("Cut", EventKind::kPartition,
          Json(JsonObject{{"side", Json(JsonArray{Json(0), Json(1)})}})),
      Lbl("Inc", EventKind::kClientRequest),
      Lbl("Jump", EventKind::kInternal),
  };
  const Violation v = ViolationFromLabels(spec, labels);
  const MinimizeResult m = MinimizeCounterexample(spec, v);
  ASSERT_TRUE(m.input_reproduced);
  EXPECT_EQ(m.events_after, 5u);  // nothing deletable: Cut gates the jump
  // But the partition's side was narrowed to a single node.
  bool saw_cut = false;
  for (const TraceStep& step : m.trace) {
    if (step.label.kind == EventKind::kPartition) {
      saw_cut = true;
      EXPECT_EQ(step.label.params["side"].size(), 1u);
    }
  }
  EXPECT_TRUE(saw_cut);
}

TEST(Minimize, PairedCutHealDeletedTogether) {
  const Spec spec = NoisyCounter(/*jump_needs_cut=*/false);
  // Heal is only enabled while cut, so neither Cut nor Heal can be removed
  // alone — the pair pass (or pair deletion) must drop both.
  const std::vector<ActionLabel> labels = {
      Lbl("Inc", EventKind::kClientRequest),
      Lbl("Cut", EventKind::kPartition,
          Json(JsonObject{{"side", Json(JsonArray{Json(0)})}})),
      Lbl("Heal", EventKind::kRecover),
      Lbl("Inc", EventKind::kClientRequest),
      Lbl("Inc", EventKind::kClientRequest),
      Lbl("Jump", EventKind::kInternal),
  };
  const Violation v = ViolationFromLabels(spec, labels);
  const MinimizeResult m = MinimizeCounterexample(spec, v);
  ASSERT_TRUE(m.input_reproduced);
  EXPECT_EQ(m.events_after, 4u);
  for (const TraceStep& step : m.trace) {
    EXPECT_NE(step.label.kind, EventKind::kPartition);
    EXPECT_NE(step.label.kind, EventKind::kRecover);
  }
}

TEST(Minimize, ReplayBudgetReturnsBestSoFar) {
  const Spec spec = toys::DieHard();
  WalkOptions wopts;
  wopts.max_depth = 40;
  wopts.collect_trace = true;
  wopts.check_invariants = true;
  Rng rng(3);
  WalkResult w = RandomWalk(spec, wopts, rng);
  for (uint64_t seed = 4; !w.violation.has_value(); ++seed) {
    Rng next(seed);
    w = RandomWalk(spec, wopts, next);
  }
  MinimizeOptions opts;
  opts.max_replays = 1;  // enough for the identity check only
  const MinimizeResult m = MinimizeCounterexample(spec, *w.violation, opts);
  ASSERT_TRUE(m.input_reproduced);
  EXPECT_TRUE(m.hit_replay_limit);
  EXPECT_LE(m.events_after, m.events_before);
  // Whatever was returned still violates.
  const SpecReplayResult rr = ReplayLabels(spec, 0, Labels(m.trace));
  EXPECT_EQ(rr.outcome, SpecReplayOutcome::kViolation);
}

TEST(Minimize, EmptyTraceIsRejected) {
  const Spec spec = toys::DieHard();
  Violation v;
  v.invariant = "BigNotFour";
  const MinimizeResult m = MinimizeCounterexample(spec, v);
  EXPECT_FALSE(m.input_reproduced);
  EXPECT_EQ(m.events_after, 0u);
}

TEST(Minimize, MismatchedSpecDoesNotReproduce) {
  // A DieHard trace replayed against the counter spec must be rejected, not
  // silently "minimized" into something unrelated.
  const Spec diehard = toys::DieHard();
  const BfsResult r = BfsCheck(diehard, {});
  ASSERT_TRUE(r.violation.has_value());
  const Spec counter = toys::Counter(10, /*with_bad_jump=*/true);
  const MinimizeResult m = MinimizeCounterexample(counter, *r.violation);
  EXPECT_FALSE(m.input_reproduced);
  EXPECT_EQ(m.events_after, m.events_before);  // returned unchanged
}

TEST(Minimize, MetricsRecorded) {
  const Spec spec = toys::Counter(10, /*with_bad_jump=*/true);
  const BfsResult r = BfsCheck(spec, {});
  ASSERT_TRUE(r.violation.has_value());
  obs::MetricsRegistry registry;
  MinimizeOptions opts;
  opts.metrics = &registry;
  const MinimizeResult m = MinimizeCounterexample(spec, *r.violation, opts);
  ASSERT_TRUE(m.input_reproduced);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("minimize.runs"), 1u);
  EXPECT_EQ(snap.counters.at("minimize.replays"), m.replays);
  EXPECT_GE(snap.counters.at("minimize.candidates"), snap.counters.at("minimize.replays"));
  EXPECT_GT(snap.histograms.at("phase.guided_replay").count, 0u);
}

TEST(Minimize, ToJsonCarriesStats) {
  const Spec spec = toys::Counter(10, /*with_bad_jump=*/true);
  const BfsResult r = BfsCheck(spec, {});
  ASSERT_TRUE(r.violation.has_value());
  const MinimizeResult m = MinimizeCounterexample(spec, *r.violation);
  const Json j = m.ToJson();
  EXPECT_TRUE(j["input_reproduced"].as_bool());
  EXPECT_EQ(j["events_before"].as_int(), 4);
  EXPECT_EQ(j["events_after"].as_int(), 4);
  EXPECT_EQ(j["violation"]["invariant"].as_string(), "Monotonic");
}

TEST(Corpus, JsonRoundTrip) {
  minimize::GoldenTrace g;
  g.bug = "PySyncObj#2";
  g.invariant = "CommitIndexMonotonic";
  g.is_transition_invariant = true;
  g.init_index = 0;
  g.events = {Lbl("Inc", EventKind::kClientRequest),
              Lbl("Cut", EventKind::kPartition,
                  Json(JsonObject{{"side", Json(JsonArray{Json(1)})}}))};
  g.meta = Json(JsonObject{{"events_before", Json(10)}});
  const Json j = minimize::GoldenTraceToJson(g);
  auto back = minimize::GoldenTraceFromJson(j);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().bug, g.bug);
  EXPECT_EQ(back.value().invariant, g.invariant);
  EXPECT_TRUE(back.value().is_transition_invariant);
  ASSERT_EQ(back.value().events.size(), 2u);
  EXPECT_EQ(back.value().events[1].action, "Cut");
  EXPECT_EQ(back.value().events[1].kind, EventKind::kPartition);
  EXPECT_TRUE(back.value().events[1].params == g.events[1].params);

  // File round trip through the pretty serializer.
  const std::string path = ::testing::TempDir() + "/golden_roundtrip.trace.json";
  ASSERT_TRUE(minimize::SaveGoldenTrace(g, path).ok());
  auto loaded = minimize::LoadGoldenTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().bug, g.bug);
  EXPECT_EQ(loaded.value().events.size(), 2u);
  std::remove(path.c_str());
}

TEST(Corpus, RejectsBadFormat) {
  EXPECT_FALSE(minimize::GoldenTraceFromJson(Json(JsonObject{})).ok());
  EXPECT_FALSE(minimize::GoldenTraceFromJson(Json("nope")).ok());
  EXPECT_FALSE(minimize::LoadGoldenTrace("/nonexistent/x.trace.json").ok());
}

TEST(Corpus, SlugNormalizesBugIds) {
  EXPECT_EQ(minimize::CorpusSlug("PySyncObj#2"), "pysyncobj_2");
  EXPECT_EQ(minimize::CorpusSlug("Xraft-KV#1"), "xraft_kv_1");
  EXPECT_EQ(minimize::CorpusSlug("ZooKeeper#1"), "zookeeper_1");
}

TEST(Corpus, GoldenReplayOnToySpec) {
  const Spec spec = toys::Counter(10, /*with_bad_jump=*/true);
  minimize::GoldenTrace g;
  g.bug = "toy";
  g.invariant = "Monotonic";
  g.is_transition_invariant = true;
  g.events.assign(3, Lbl("Inc", EventKind::kClientRequest));
  g.events.push_back(Lbl("Jump", EventKind::kInternal));
  const SpecReplayResult r = minimize::ReplayGoldenTrace(spec, g);
  EXPECT_EQ(r.outcome, SpecReplayOutcome::kViolation);
  EXPECT_EQ(r.invariant, "Monotonic");
  EXPECT_TRUE(r.is_transition_invariant);
}

}  // namespace
}  // namespace sandtable
