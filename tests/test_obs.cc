// Tests for the observability subsystem (src/obs/): metric primitives,
// snapshot algebra, phase timers and the structured progress/report export.
// Runs under TSan via the `par` label — the counter and histogram tests
// hammer the sharded cells from many threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/phase_timer.h"
#include "src/obs/progress.h"
#include "src/obs/report.h"
#include "src/util/json.h"

namespace sandtable {
namespace obs {
namespace {

TEST(Histogram, PercentileMath) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v);
  }
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 5050u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
  // Percentiles are interpolated inside power-of-two buckets, so they are
  // estimates — but they must be clamped to [min, max] and monotone in p.
  const double p10 = s.Percentile(0.10);
  const double p50 = s.Percentile(0.50);
  const double p99 = s.Percentile(0.99);
  EXPECT_GE(p10, 1.0);
  EXPECT_LE(p99, 100.0);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  // The median of 1..100 lives in bucket [32,63]; the estimate must too.
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 64.0);
}

TEST(Histogram, SingleValueCollapsesPercentiles) {
  Histogram h;
  h.Record(42);
  const HistogramSnapshot s = h.Snapshot();
  // With one observation min == max pins every percentile exactly.
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 42.0);
}

TEST(Histogram, EmptySnapshotIsInert) {
  const HistogramSnapshot s = Histogram().Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 0.0);
}

TEST(Counter, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("test.hits");
  Histogram& h = registry.GetHistogram("test.latency");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.Add(1);
        h.Record(static_cast<uint64_t>(t) + 1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, static_cast<uint64_t>(kThreads));
}

TEST(Snapshot, MergeIsAssociative) {
  // Three registries with overlapping and disjoint metric names.
  MetricsRegistry ra;
  MetricsRegistry rb;
  MetricsRegistry rc;
  ra.GetCounter("shared").Add(3);
  rb.GetCounter("shared").Add(5);
  rc.GetCounter("shared").Add(7);
  ra.GetCounter("only_a").Add(1);
  rc.GetCounter("only_c").Add(9);
  ra.GetGauge("peak").Set(10);
  rb.GetGauge("peak").Set(25);
  rc.GetGauge("peak").Set(4);
  for (uint64_t v : {1, 2, 3}) ra.GetHistogram("lat").Record(v);
  for (uint64_t v : {100, 200}) rb.GetHistogram("lat").Record(v);
  rc.GetHistogram("lat").Record(50);

  const MetricsSnapshot a = ra.Snapshot();
  const MetricsSnapshot b = rb.Snapshot();
  const MetricsSnapshot c = rc.Snapshot();

  MetricsSnapshot left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  MetricsSnapshot bc = b;     // a + (b + c)
  bc.Merge(c);
  MetricsSnapshot right = a;
  right.Merge(bc);

  EXPECT_EQ(left.ToJson().Dump(), right.ToJson().Dump());
  EXPECT_EQ(left.counters.at("shared"), 15u);
  EXPECT_EQ(left.counters.at("only_a"), 1u);
  EXPECT_EQ(left.counters.at("only_c"), 9u);
  EXPECT_EQ(left.gauges.at("peak"), 25);  // gauges merge by max
  EXPECT_EQ(left.histograms.at("lat").count, 6u);
  EXPECT_EQ(left.histograms.at("lat").min, 1u);
  EXPECT_EQ(left.histograms.at("lat").max, 200u);
}

TEST(PhaseTimer, RecordsOnlyWhenEnabled) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("phase.expand");
  { PhaseTimer t(&h); }
  EXPECT_EQ(h.Snapshot().count, 1u);
  SetPhaseTimersEnabled(false);
  { PhaseTimer t(&h); }
  EXPECT_EQ(h.Snapshot().count, 1u);  // disabled: no clock reads, no record
  SetPhaseTimersEnabled(true);
  { PhaseTimer t(&h); }
  EXPECT_EQ(h.Snapshot().count, 2u);
  { PhaseTimer t(nullptr); }  // null histogram is always a no-op
}

TEST(Progress, GoldenLineParsesWithAllFields) {
  std::ostringstream sink;
  ProgressReporter reporter(&sink, {});
  ProgressSample sample;
  sample.engine = "parallel_bfs";
  sample.elapsed_s = 1.5;
  sample.distinct_states = 1234;
  sample.frontier = 56;
  sample.depth = 7;
  sample.transitions = 9000;
  sample.deadlocks = 2;
  sample.event_kinds = 4;
  sample.branches = 11;
  sample.worker_queue_depths = {10, 20, 26};
  ShardLoad load;
  load.shards = 4;
  load.min_size = 100;
  load.max_size = 400;
  load.avg_size = 250.0;
  load.max_load_factor = 0.75;
  sample.shard_load = load;
  reporter.Emit(sample);
  EXPECT_EQ(reporter.lines_emitted(), 1u);

  auto parsed = Json::Parse(sink.str());
  ASSERT_TRUE(parsed.ok()) << sink.str();
  const Json& j = parsed.value();
  EXPECT_EQ(j["type"].as_string(), "progress");
  EXPECT_EQ(j["engine"].as_string(), "parallel_bfs");
  EXPECT_DOUBLE_EQ(j["elapsed_s"].as_double(), 1.5);
  EXPECT_EQ(j["distinct_states"].as_int(), 1234);
  EXPECT_EQ(j["frontier"].as_int(), 56);
  EXPECT_EQ(j["depth"].as_int(), 7);
  EXPECT_EQ(j["transitions"].as_int(), 9000);
  EXPECT_EQ(j["deadlocks"].as_int(), 2);
  EXPECT_EQ(j["event_kinds"].as_int(), 4);
  EXPECT_EQ(j["branches"].as_int(), 11);
  ASSERT_EQ(j["workers"].size(), 3u);
  EXPECT_EQ(j["workers"][2].as_int(), 26);
  EXPECT_EQ(j["shards"]["count"].as_int(), 4);
  EXPECT_DOUBLE_EQ(j["shards"]["max_load_factor"].as_double(), 0.75);
  EXPECT_GT(j["states_per_sec"].as_double(), 0.0);
}

TEST(Progress, CadenceByStates) {
  std::ostringstream sink;
  ProgressOptions opts;
  opts.every_states = 100;
  ProgressReporter reporter(&sink, opts);
  EXPECT_FALSE(reporter.Due(50));
  EXPECT_TRUE(reporter.Due(100));
  ProgressSample s;
  s.engine = "bfs";
  s.distinct_states = 100;
  reporter.Emit(s);
  EXPECT_FALSE(reporter.Due(150));
  EXPECT_TRUE(reporter.Due(200));
}

TEST(Report, ComposesResultAndMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("states.distinct").Add(17);
  registry.GetGauge("workers").Set(2);
  registry.GetHistogram("phase.expand").Record(1000);
  JsonObject result;
  result["outcome"] = Json(std::string("exhausted"));
  const Json report = MakeReport("bfs", Json(std::move(result)), &registry);
  EXPECT_EQ(report["type"].as_string(), "report");
  EXPECT_EQ(report["schema_version"].as_int(), kReportSchemaVersion);
  EXPECT_EQ(report["engine"].as_string(), "bfs");
  EXPECT_EQ(report["result"]["outcome"].as_string(), "exhausted");
  EXPECT_EQ(report["metrics"]["counters"]["states.distinct"].as_int(), 17);
  // The document survives a serialize/parse round trip.
  auto reparsed = Json::Parse(report.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().Dump(), report.Dump());
  // And renders as a human table mentioning the counter.
  const std::string text = ReportToText(report);
  EXPECT_NE(text.find("states.distinct"), std::string::npos);
  EXPECT_NE(text.find("phase.expand"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace sandtable
