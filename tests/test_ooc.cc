// Out-of-core exploration end to end: the serial and parallel BFS engines
// must produce identical results (state counts, depth, deadlocks, violations)
// with a disk-spilling store + frontier as with their built-in in-memory
// structures — and a run that checkpointed, died and resumed must reproduce
// the uninterrupted run's final numbers. Crash-safety: torn or tampered
// checkpoints are rejected with clear errors, never silently resumed.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/mc/bfs.h"
#include "src/par/parallel_bfs.h"
#include "src/store/checkpoint.h"
#include "src/store/compact_store.h"
#include "src/store/frontier.h"
#include "src/store/ooc.h"
#include "src/store/state_store.h"
#include "src/util/json.h"
#include "tests/toy_specs.h"

namespace sandtable {
namespace {

namespace fs = std::filesystem;

class OocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sandtable-ooc-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    if (!HasFailure()) {
      std::error_code ec;
      fs::remove_all(dir_, ec);
    }
  }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

// An out-of-core harness with deliberately tiny budgets so even toy spaces
// spill: every few fingerprints trigger a run, every few frontier states hit
// the segment file.
struct TinyOoc {
  explicit TinyOoc(const std::string& base) {
    store::StoreConfig scfg;
    scfg.spill_dir = base + "/fps";
    scfg.max_resident = 4;
    scfg.max_runs = 2;
    scfg.shard_count_log2 = 1;
    state_store = std::make_unique<store::SpillingStateStore>(scfg);
    spool_cfg.dir = base + "/frontier";
    spool_cfg.max_resident = 3;
    spool_cfg.chunk_states = 2;
  }
  store::OocConfig Config() {
    store::OocConfig ooc;
    ooc.state_store = state_store.get();
    ooc.frontier_spool = &spool_cfg;
    return ooc;
  }
  std::unique_ptr<store::SpillingStateStore> state_store;
  store::SpoolConfig spool_cfg;
};

void ExpectSameResult(const BfsResult& a, const BfsResult& b) {
  EXPECT_EQ(a.distinct_states, b.distinct_states);
  EXPECT_EQ(a.depth_reached, b.depth_reached);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.deadlock_states, b.deadlock_states);
  ASSERT_EQ(a.violation.has_value(), b.violation.has_value());
  if (a.violation.has_value()) {
    EXPECT_EQ(a.violation->invariant, b.violation->invariant);
    EXPECT_EQ(a.violation->depth, b.violation->depth);
    EXPECT_EQ(a.violation->trace.size(), b.violation->trace.size());
  }
}

// ---- Serial engine equivalence ---------------------------------------------

TEST_F(OocTest, SerialDieHardFindsSameViolationOutOfCore) {
  const Spec spec = toys::DieHard();
  const BfsResult in_mem = BfsCheck(spec);
  ASSERT_TRUE(in_mem.violation.has_value());
  EXPECT_EQ(in_mem.violation->depth, 6u);

  TinyOoc ooc(Path("ooc"));
  BfsOptions opts;
  opts.ooc = ooc.Config();
  const BfsResult out_of_core = BfsCheck(spec, opts);
  ExpectSameResult(in_mem, out_of_core);
  EXPECT_GT(ooc.state_store->SpilledSize(), 0u);
}

TEST_F(OocTest, SerialCounterExhaustsIdentically) {
  const Spec spec = toys::Counter(40);
  const BfsResult in_mem = BfsCheck(spec);
  ASSERT_TRUE(in_mem.exhausted);
  EXPECT_EQ(in_mem.distinct_states, 41u);
  EXPECT_EQ(in_mem.deadlock_states, 1u);  // x == max has no successors

  TinyOoc ooc(Path("ooc"));
  BfsOptions opts;
  opts.ooc = ooc.Config();
  ExpectSameResult(in_mem, BfsCheck(spec, opts));
}

TEST_F(OocTest, SerialTokenRingWithSymmetryMatches) {
  const Spec spec = toys::TokenRing(3, 3);
  const BfsResult in_mem = BfsCheck(spec);
  ASSERT_TRUE(in_mem.exhausted);

  TinyOoc ooc(Path("ooc"));
  BfsOptions opts;
  opts.ooc = ooc.Config();
  ExpectSameResult(in_mem, BfsCheck(spec, opts));
}

// ---- Parallel engine equivalence -------------------------------------------

TEST_F(OocTest, ParallelDieHardFindsSameViolationOutOfCore) {
  const Spec spec = toys::DieHard();
  const BfsResult serial = BfsCheck(spec);

  TinyOoc ooc(Path("ooc"));
  ParBfsOptions opts;
  opts.base.ooc = ooc.Config();
  opts.workers = 2;
  opts.chunk_size = 1;
  const BfsResult par = ParallelBfsCheck(spec, opts);
  ASSERT_TRUE(par.violation.has_value());
  EXPECT_EQ(par.violation->invariant, serial.violation->invariant);
  EXPECT_EQ(par.violation->depth, serial.violation->depth);
  EXPECT_GT(ooc.state_store->SpilledSize(), 0u);
}

TEST_F(OocTest, ParallelTokenRingMatchesSerialOutOfCore) {
  const Spec spec = toys::TokenRing(3, 4);
  const BfsResult serial = BfsCheck(spec);
  ASSERT_TRUE(serial.exhausted);

  TinyOoc ooc(Path("ooc"));
  ParBfsOptions opts;
  opts.base.ooc = ooc.Config();
  opts.workers = 3;
  opts.chunk_size = 1;
  ExpectSameResult(serial, ParallelBfsCheck(spec, opts));
}

// ---- Checkpoint / resume ---------------------------------------------------

// Run `spec` out-of-core with a checkpoint cadence and a state limit (the
// simulated crash point), then resume from the checkpoint in a fresh store
// and run to completion. Returns the resumed result.
BfsResult CheckpointThenResume(const Spec& spec, const std::string& base,
                               uint64_t crash_after_states, uint64_t ckpt_every,
                               bool parallel, bool steal = false) {
  const std::string ckpt_dir = base + "/run.ckpt";
  {
    TinyOoc ooc(base + "/a");
    store::Checkpointer::Config ccfg;
    ccfg.dir = ckpt_dir;
    ccfg.every_states = ckpt_every;
    store::Checkpointer ckpt(ccfg, &spec);
    BfsOptions opts;
    opts.ooc = ooc.Config();
    opts.ooc.checkpointer = &ckpt;
    opts.max_distinct_states = crash_after_states;
    BfsResult partial;
    if (parallel) {
      ParBfsOptions popts;
      popts.base = opts;
      popts.workers = 2;
      popts.chunk_size = 1;
      popts.steal = steal;
      partial = ParallelBfsCheck(spec, popts);
    } else {
      partial = BfsCheck(spec, opts);
    }
    EXPECT_TRUE(partial.hit_state_limit || partial.violation.has_value());
    EXPECT_GT(ckpt.writes(), 0u) << "no checkpoint written before the crash point";
  }
  // The first run's store/spool are gone (simulated process death). Open the
  // checkpoint and resume in a fresh store.
  auto resumed = store::OpenCheckpoint(ckpt_dir, spec);
  if (!resumed.ok()) {
    ADD_FAILURE() << resumed.error();
    return BfsResult{};
  }
  TinyOoc ooc(base + "/b");
  EXPECT_TRUE(ooc.state_store->LoadRuns(resumed.value().run_paths).ok());
  BfsOptions opts;
  opts.ooc = ooc.Config();
  opts.ooc.resume = &resumed.value();
  if (parallel) {
    ParBfsOptions popts;
    popts.base = opts;
    popts.workers = 2;
    popts.chunk_size = 1;
    popts.steal = steal;
    return ParallelBfsCheck(spec, popts);
  }
  return BfsCheck(spec, opts);
}

TEST_F(OocTest, SerialResumeReproducesUninterruptedCounterRun) {
  const Spec spec = toys::Counter(30);
  const BfsResult uninterrupted = BfsCheck(spec);
  ASSERT_TRUE(uninterrupted.exhausted);
  const BfsResult resumed = CheckpointThenResume(spec, Path("cr"),
                                                 /*crash_after_states=*/12,
                                                 /*ckpt_every=*/5, /*parallel=*/false);
  ExpectSameResult(uninterrupted, resumed);
}

TEST_F(OocTest, SerialResumeStillFindsTheDieHardViolation) {
  const Spec spec = toys::DieHard();
  const BfsResult uninterrupted = BfsCheck(spec);
  ASSERT_TRUE(uninterrupted.violation.has_value());
  // Crash after 8 states — before the depth-6 violation is reachable.
  const BfsResult resumed = CheckpointThenResume(spec, Path("cr"),
                                                 /*crash_after_states=*/8,
                                                 /*ckpt_every=*/2, /*parallel=*/false);
  ASSERT_TRUE(resumed.violation.has_value());
  EXPECT_EQ(resumed.violation->invariant, uninterrupted.violation->invariant);
  EXPECT_EQ(resumed.violation->depth, uninterrupted.violation->depth);
  EXPECT_EQ(resumed.distinct_states, uninterrupted.distinct_states);
}

TEST_F(OocTest, ParallelResumeReproducesUninterruptedRun) {
  // TokenRing(3, 8) has 10 symmetric states (partitions of 8 into <= 3
  // parts), so a limit of 6 states crashes mid-exploration.
  const Spec spec = toys::TokenRing(3, 8);
  const BfsResult uninterrupted = BfsCheck(spec);
  ASSERT_TRUE(uninterrupted.exhausted);
  const BfsResult resumed = CheckpointThenResume(spec, Path("cr"),
                                                 /*crash_after_states=*/6,
                                                 /*ckpt_every=*/2, /*parallel=*/true);
  ExpectSameResult(uninterrupted, resumed);
}

// ---- Crash safety ----------------------------------------------------------

// Write one real checkpoint via the Checkpointer (store + frontier + manifest)
// and return its directory.
std::string WriteRealCheckpoint(const Spec& spec, const std::string& base) {
  store::StoreConfig scfg;
  scfg.spill_dir = base + "/fps";
  store::SpillingStateStore sstore(scfg);
  sstore.InsertIfAbsent(1, 1);
  sstore.InsertIfAbsent(2, 1);
  store::FrontierSpool spool(nullptr, "f.seg");
  EXPECT_TRUE(spool.Push(2, spec.init_states[0]).ok());

  store::Checkpointer::Config ccfg;
  ccfg.dir = base + "/run.ckpt";
  store::Checkpointer ckpt(ccfg, &spec);
  store::CheckpointMeta meta;
  meta.distinct_states = 2;
  meta.depth_reached = 1;
  meta.frontier_size = 1;
  EXPECT_TRUE(ckpt.Write(sstore, spool, meta).ok());
  return ccfg.dir;
}

TEST_F(OocTest, TornCheckpointStageIsRejected) {
  const Spec spec = toys::Counter(5);
  const std::string dir = WriteRealCheckpoint(spec, Path("torn"));
  // Simulate a crash mid-write: the stage directory exists, the final
  // directory does not (the rename never happened).
  fs::rename(dir, dir + ".tmp");
  auto r = store::OpenCheckpoint(dir, spec);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find(".tmp"), std::string::npos) << r.error();
}

TEST_F(OocTest, CrashBetweenRotationRenamesFallsBackToOld) {
  const Spec spec = toys::Counter(5);
  const std::string dir = WriteRealCheckpoint(spec, Path("rot"));
  // Simulate a crash between rename(dir -> dir.old) and rename(stage -> dir):
  // the previous complete checkpoint sits at .old, nothing at dir.
  fs::rename(dir, dir + ".old");
  auto meta = store::ReadCheckpointMeta(dir);
  ASSERT_TRUE(meta.ok()) << meta.error();
  EXPECT_EQ(meta.value().distinct_states, 2u);
  auto r = store::OpenCheckpoint(dir, spec);
  ASSERT_TRUE(r.ok()) << r.error();
  // All resolved paths point into the .old directory so runs/frontier load.
  EXPECT_EQ(r.value().dir, dir + ".old");
  for (const std::string& p : r.value().run_paths) {
    EXPECT_TRUE(fs::exists(p)) << p;
  }
  EXPECT_TRUE(fs::exists(r.value().frontier_path));
}

TEST_F(OocTest, CorruptManifestIsRejected) {
  const Spec spec = toys::Counter(5);
  const std::string dir = WriteRealCheckpoint(spec, Path("corrupt"));
  std::ofstream(dir + "/manifest.json") << "{ not json";
  auto r = store::OpenCheckpoint(dir, spec);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("manifest"), std::string::npos) << r.error();
}

TEST_F(OocTest, FormatVersionMismatchIsRejected) {
  const Spec spec = toys::Counter(5);
  const std::string dir = WriteRealCheckpoint(spec, Path("ver"));
  // Rewrite the manifest with a bumped format version.
  std::ifstream in(dir + "/manifest.json");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok());
  JsonObject o = parsed.value().as_object();
  o["format_version"] = Json(static_cast<int64_t>(99));
  std::ofstream(dir + "/manifest.json") << Json(std::move(o)).Dump();

  auto r = store::OpenCheckpoint(dir, spec);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("format version"), std::string::npos) << r.error();
}

TEST_F(OocTest, SpecMismatchIsRejected) {
  const Spec counter = toys::Counter(5);
  const std::string dir = WriteRealCheckpoint(counter, Path("spec"));
  const Spec diehard = toys::DieHard();
  auto r = store::OpenCheckpoint(dir, diehard);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("spec"), std::string::npos) << r.error();
  // The same spec still opens fine.
  EXPECT_TRUE(store::OpenCheckpoint(dir, counter).ok());
}

TEST_F(OocTest, MissingRunFileIsRejected) {
  const Spec spec = toys::Counter(5);
  const std::string dir = WriteRealCheckpoint(spec, Path("missing"));
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".run") {
      fs::remove(entry.path());
    }
  }
  auto r = store::OpenCheckpoint(dir, spec);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("visited run"), std::string::npos) << r.error();
}

// ---- Work-stealing engine checkpoint / resume -------------------------------

TEST_F(OocTest, StealResumeReproducesUninterruptedRun) {
  const Spec spec = toys::TokenRing(3, 8);
  const BfsResult uninterrupted = BfsCheck(spec);
  ASSERT_TRUE(uninterrupted.exhausted);
  const BfsResult resumed = CheckpointThenResume(spec, Path("cr"),
                                                 /*crash_after_states=*/6,
                                                 /*ckpt_every=*/2, /*parallel=*/true,
                                                 /*steal=*/true);
  ExpectSameResult(uninterrupted, resumed);
}

TEST_F(OocTest, StealResumeStillFindsTheDieHardViolation) {
  const Spec spec = toys::DieHard();
  const BfsResult uninterrupted = BfsCheck(spec);
  ASSERT_TRUE(uninterrupted.violation.has_value());
  const BfsResult resumed = CheckpointThenResume(spec, Path("cr"),
                                                 /*crash_after_states=*/8,
                                                 /*ckpt_every=*/2, /*parallel=*/true,
                                                 /*steal=*/true);
  ASSERT_TRUE(resumed.violation.has_value());
  EXPECT_EQ(resumed.violation->invariant, uninterrupted.violation->invariant);
  EXPECT_EQ(resumed.violation->depth, uninterrupted.violation->depth);
}

// A level-sync-written checkpoint resumes under the steal engine and vice
// versa: the checkpoint format is scheduler-agnostic (level barriers and
// epoch barriers snapshot the same frontier).
TEST_F(OocTest, CheckpointIsSchedulerAgnostic) {
  const Spec spec = toys::TokenRing(3, 8);
  const BfsResult uninterrupted = BfsCheck(spec);
  const std::string ckpt_dir = Path("x") + "/run.ckpt";
  {
    TinyOoc ooc(Path("x") + "/a");
    store::Checkpointer::Config ccfg;
    ccfg.dir = ckpt_dir;
    ccfg.every_states = 2;
    store::Checkpointer ckpt(ccfg, &spec);
    ParBfsOptions popts;
    popts.base.ooc = ooc.Config();
    popts.base.ooc.checkpointer = &ckpt;
    popts.base.max_distinct_states = 6;
    popts.workers = 2;
    popts.chunk_size = 1;
    popts.steal = false;  // written by the level-sync scheduler
    const BfsResult partial = ParallelBfsCheck(spec, popts);
    ASSERT_TRUE(partial.hit_state_limit);
    ASSERT_GT(ckpt.writes(), 0u);
  }
  auto resumed = store::OpenCheckpoint(ckpt_dir, spec);
  ASSERT_TRUE(resumed.ok()) << resumed.error();
  TinyOoc ooc(Path("x") + "/b");
  ASSERT_TRUE(ooc.state_store->LoadRuns(resumed.value().run_paths).ok());
  ParBfsOptions popts;
  popts.base.ooc = ooc.Config();
  popts.base.ooc.resume = &resumed.value();
  popts.workers = 2;
  popts.chunk_size = 1;
  popts.steal = true;  // resumed by the work-stealing scheduler
  ExpectSameResult(uninterrupted, ParallelBfsCheck(spec, popts));
}

// Analytics continuity under the steal engine: profile counts after
// crash + resume equal an uninterrupted run's (the same guarantee
// test_analytics pins for the serial engine).
TEST_F(OocTest, StealResumeKeepsAnalyticsContinuous) {
  const Spec spec = toys::Counter(30);
  obs::ExplorationProfile uninterrupted;
  BfsOptions plain;
  plain.analytics = &uninterrupted;
  ASSERT_TRUE(BfsCheck(spec, plain).exhausted);

  const std::string ckpt_dir = Path("an") + "/run.ckpt";
  {
    TinyOoc ooc(Path("an") + "/a");
    store::Checkpointer::Config ccfg;
    ccfg.dir = ckpt_dir;
    ccfg.every_states = 5;
    store::Checkpointer ckpt(ccfg, &spec);
    obs::ExplorationProfile crashed;  // dies with the "process"
    ParBfsOptions popts;
    popts.base.ooc = ooc.Config();
    popts.base.ooc.checkpointer = &ckpt;
    popts.base.max_distinct_states = 12;
    popts.base.analytics = &crashed;
    popts.workers = 2;
    popts.chunk_size = 1;
    popts.steal = true;
    ASSERT_TRUE(ParallelBfsCheck(spec, popts).hit_state_limit);
    ASSERT_GT(ckpt.writes(), 0u);
  }
  auto resumed_ckpt = store::OpenCheckpoint(ckpt_dir, spec);
  ASSERT_TRUE(resumed_ckpt.ok()) << resumed_ckpt.error();
  TinyOoc ooc(Path("an") + "/b");
  ASSERT_TRUE(ooc.state_store->LoadRuns(resumed_ckpt.value().run_paths).ok());
  obs::ExplorationProfile after;
  ParBfsOptions popts;
  popts.base.ooc = ooc.Config();
  popts.base.ooc.resume = &resumed_ckpt.value();
  popts.base.analytics = &after;
  popts.workers = 2;
  popts.chunk_size = 1;
  popts.steal = true;
  ASSERT_TRUE(ParallelBfsCheck(spec, popts).exhausted);

  ASSERT_EQ(after.num_actions(), uninterrupted.num_actions());
  for (size_t i = 0; i < after.num_actions(); ++i) {
    EXPECT_EQ(after.action_stats(i).fired, uninterrupted.action_stats(i).fired)
        << uninterrupted.actions()[i].name;
  }
  EXPECT_EQ(after.distinct_states(), uninterrupted.distinct_states());
}

// ---- Hash-compacted checkpoint / resume -------------------------------------

// Small compact store + spool for checkpointing runs without parents.
struct TinyCompact {
  explicit TinyCompact(const std::string& base) {
    store::CompactStateStore::Config cfg;
    cfg.reserve = 16;
    cfg.shard_count_log2 = 1;
    state_store = std::make_unique<store::CompactStateStore>(cfg);
    spool_cfg.dir = base + "/frontier";
    spool_cfg.max_resident = 3;
    spool_cfg.chunk_states = 2;
  }
  store::OocConfig Config() {
    store::OocConfig ooc;
    ooc.state_store = state_store.get();
    ooc.frontier_spool = &spool_cfg;
    return ooc;
  }
  std::unique_ptr<store::CompactStateStore> state_store;
  store::SpoolConfig spool_cfg;
};

TEST_F(OocTest, HashCompactCheckpointResumeReproducesRun) {
  const Spec spec = toys::Counter(30);
  const BfsResult uninterrupted = BfsCheck(spec);
  ASSERT_TRUE(uninterrupted.exhausted);

  const std::string ckpt_dir = Path("hc") + "/run.ckpt";
  {
    TinyCompact ooc(Path("hc") + "/a");
    store::Checkpointer::Config ccfg;
    ccfg.dir = ckpt_dir;
    ccfg.every_states = 5;
    store::Checkpointer ckpt(ccfg, &spec);
    BfsOptions opts;
    opts.ooc = ooc.Config();
    opts.ooc.checkpointer = &ckpt;
    opts.max_distinct_states = 12;
    const BfsResult partial = BfsCheck(spec, opts);
    ASSERT_TRUE(partial.hit_state_limit);
    ASSERT_TRUE(partial.hash_compact);
    ASSERT_GT(ckpt.writes(), 0u);
  }
  // The manifest records the mode.
  auto meta = store::ReadCheckpointMeta(ckpt_dir);
  ASSERT_TRUE(meta.ok()) << meta.error();
  EXPECT_TRUE(meta.value().hash_compact);

  auto resumed_ckpt = store::OpenCheckpoint(ckpt_dir, spec);
  ASSERT_TRUE(resumed_ckpt.ok()) << resumed_ckpt.error();
  TinyCompact ooc(Path("hc") + "/b");
  ASSERT_TRUE(ooc.state_store->LoadRuns(resumed_ckpt.value().run_paths).ok());
  BfsOptions opts;
  opts.ooc = ooc.Config();
  opts.ooc.resume = &resumed_ckpt.value();
  const BfsResult resumed = BfsCheck(spec, opts);
  EXPECT_TRUE(resumed.exhausted);
  EXPECT_TRUE(resumed.hash_compact);
  EXPECT_GT(resumed.collision_probability, 0.0);
  EXPECT_EQ(resumed.distinct_states, uninterrupted.distinct_states);
  EXPECT_EQ(resumed.depth_reached, uninterrupted.depth_reached);
  EXPECT_EQ(resumed.deadlock_states, uninterrupted.deadlock_states);
}

TEST_F(OocTest, HashCompactResumeUnderStealEngine) {
  const Spec spec = toys::TokenRing(3, 8);
  const BfsResult uninterrupted = BfsCheck(spec);
  ASSERT_TRUE(uninterrupted.exhausted);

  const std::string ckpt_dir = Path("hcs") + "/run.ckpt";
  {
    TinyCompact ooc(Path("hcs") + "/a");
    store::Checkpointer::Config ccfg;
    ccfg.dir = ckpt_dir;
    ccfg.every_states = 2;
    store::Checkpointer ckpt(ccfg, &spec);
    ParBfsOptions popts;
    popts.base.ooc = ooc.Config();
    popts.base.ooc.checkpointer = &ckpt;
    popts.base.max_distinct_states = 6;
    popts.workers = 2;
    popts.chunk_size = 1;
    popts.steal = true;
    const BfsResult partial = ParallelBfsCheck(spec, popts);
    ASSERT_TRUE(partial.hit_state_limit);
    ASSERT_TRUE(partial.hash_compact);
    ASSERT_GT(ckpt.writes(), 0u);
  }
  auto resumed_ckpt = store::OpenCheckpoint(ckpt_dir, spec);
  ASSERT_TRUE(resumed_ckpt.ok()) << resumed_ckpt.error();
  TinyCompact ooc(Path("hcs") + "/b");
  ASSERT_TRUE(ooc.state_store->LoadRuns(resumed_ckpt.value().run_paths).ok());
  ParBfsOptions popts;
  popts.base.ooc = ooc.Config();
  popts.base.ooc.resume = &resumed_ckpt.value();
  popts.workers = 2;
  popts.chunk_size = 1;
  popts.steal = true;
  const BfsResult resumed = ParallelBfsCheck(spec, popts);
  EXPECT_TRUE(resumed.exhausted);
  EXPECT_TRUE(resumed.hash_compact);
  EXPECT_EQ(resumed.distinct_states, uninterrupted.distinct_states);
  EXPECT_EQ(resumed.depth_reached, uninterrupted.depth_reached);
  EXPECT_EQ(resumed.deadlock_states, uninterrupted.deadlock_states);
}

// Resuming a hash-compacted checkpoint into a parent-retaining run (or vice
// versa) is a loud failure, not a silently broken trace reconstruction.
TEST_F(OocTest, HashCompactModeMismatchIsRejected) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const Spec spec = toys::Counter(30);
  const std::string ckpt_dir = Path("mm") + "/run.ckpt";
  {
    TinyCompact ooc(Path("mm") + "/a");
    store::Checkpointer::Config ccfg;
    ccfg.dir = ckpt_dir;
    ccfg.every_states = 5;
    store::Checkpointer ckpt(ccfg, &spec);
    BfsOptions opts;
    opts.ooc = ooc.Config();
    opts.ooc.checkpointer = &ckpt;
    opts.max_distinct_states = 12;
    ASSERT_TRUE(BfsCheck(spec, opts).hit_state_limit);
    ASSERT_GT(ckpt.writes(), 0u);
  }
  auto resumed_ckpt = store::OpenCheckpoint(ckpt_dir, spec);
  ASSERT_TRUE(resumed_ckpt.ok()) << resumed_ckpt.error();
  // Resume into a spilling (parent-retaining) store: the engine must abort
  // with the mode-mismatch message instead of reconstructing bogus traces.
  TinyOoc ooc(Path("mm") + "/b");
  ASSERT_TRUE(ooc.state_store->LoadRuns(resumed_ckpt.value().run_paths).ok());
  BfsOptions opts;
  opts.ooc = ooc.Config();
  opts.ooc.resume = &resumed_ckpt.value();
  EXPECT_DEATH(BfsCheck(spec, opts), "resume mode mismatch");
}

// The manifest's hash_compact field round-trips, and manifests written before
// the field existed (absent key) parse as false.
TEST_F(OocTest, CheckpointMetaHashCompactJsonRoundTrip) {
  store::CheckpointMeta meta;
  meta.spec_name = "m";
  meta.hash_compact = true;
  auto back = store::CheckpointMeta::FromJson(meta.ToJson());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_TRUE(back.value().hash_compact);

  Json j = meta.ToJson();
  j.as_object().erase("hash_compact");
  auto legacy = store::CheckpointMeta::FromJson(j);
  ASSERT_TRUE(legacy.ok()) << legacy.error();
  EXPECT_FALSE(legacy.value().hash_compact);
}

TEST_F(OocTest, SpecIdentityHashSeparatesSpecsButIsStable) {
  const uint64_t counter5 = store::SpecIdentityHash(toys::Counter(5));
  EXPECT_EQ(counter5, store::SpecIdentityHash(toys::Counter(5)));
  // Extra action ("Jump") changes the identity; a changed lambda capture alone
  // (Counter(6)) is the documented blind spot and is NOT detected.
  EXPECT_NE(counter5, store::SpecIdentityHash(toys::Counter(5, /*with_bad_jump=*/true)));
  EXPECT_NE(counter5, store::SpecIdentityHash(toys::DieHard()));
  // Symmetry declaration is part of the identity.
  Spec ring = toys::TokenRing(3, 3);
  const uint64_t with_sym = store::SpecIdentityHash(ring);
  ring.symmetry.reset();
  EXPECT_NE(with_sym, store::SpecIdentityHash(ring));
}

}  // namespace
}  // namespace sandtable
