// Parallel exploration engine (src/par/): serial/parallel equivalence on the
// toy specs and small Raft/Zab configurations, minimal-violation-depth
// equality on seeded Table-2 bugs, and concurrency unit tests for the
// sharded fingerprint set and the work queue.
//
// This binary carries the `par` CTest label; run it under ThreadSanitizer
// with `cmake -DSANDTABLE_SANITIZE=thread` + `ctest -L par` (see README.md).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/conformance/bug_catalog.h"
#include "src/mc/bfs.h"
#include "src/mc/expand.h"
#include "src/par/fingerprint_shards.h"
#include "src/par/parallel_bfs.h"
#include "src/par/work_queue.h"
#include "src/raftspec/raft_spec.h"
#include "src/zabspec/zab_spec.h"
#include "tests/toy_specs.h"

namespace sandtable {
namespace {

#if defined(__SANITIZE_THREAD__)
#define ST_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ST_TSAN_BUILD 1
#endif
#endif
#ifdef ST_TSAN_BUILD
constexpr bool kTsanBuild = true;
#else
constexpr bool kTsanBuild = false;
#endif

constexpr int kWorkerCounts[] = {1, 2, 8};

// Full-result equivalence for specs whose bounded space is explored without a
// stop-at-first-violation early return: every derived statistic must match
// serial BFS for every worker count.
void ExpectExplorationEquivalent(const Spec& spec, const BfsOptions& base = {}) {
  const BfsResult serial = BfsCheck(spec, base);
  ASSERT_FALSE(serial.violation.has_value())
      << spec.name << ": equivalence helper expects a violation-free spec";
  for (const int workers : kWorkerCounts) {
    ParBfsOptions popts;
    popts.base = base;
    popts.workers = workers;
    const BfsResult par = ParallelBfsCheck(spec, popts);
    EXPECT_EQ(par.distinct_states, serial.distinct_states)
        << spec.name << " with " << workers << " workers";
    EXPECT_EQ(par.depth_reached, serial.depth_reached)
        << spec.name << " with " << workers << " workers";
    EXPECT_EQ(par.exhausted, serial.exhausted)
        << spec.name << " with " << workers << " workers";
    EXPECT_EQ(par.deadlock_states, serial.deadlock_states)
        << spec.name << " with " << workers << " workers";
    EXPECT_EQ(par.coverage.branches, serial.coverage.branches)
        << spec.name << " with " << workers << " workers";
    EXPECT_EQ(par.coverage.transitions, serial.coverage.transitions)
        << spec.name << " with " << workers << " workers";
    EXPECT_FALSE(par.violation.has_value());
  }
}

// Violation equivalence: the parallel engine must report the same (minimal)
// violation depth and property as serial BFS, for every worker count.
void ExpectSameMinimalViolation(const Spec& spec, const BfsOptions& base = {}) {
  const BfsResult serial = BfsCheck(spec, base);
  ASSERT_TRUE(serial.violation.has_value()) << spec.name;
  for (const int workers : kWorkerCounts) {
    ParBfsOptions popts;
    popts.base = base;
    popts.workers = workers;
    const BfsResult par = ParallelBfsCheck(spec, popts);
    ASSERT_TRUE(par.violation.has_value())
        << spec.name << " with " << workers << " workers";
    EXPECT_EQ(par.violation->depth, serial.violation->depth)
        << spec.name << " with " << workers << " workers";
    EXPECT_EQ(par.violation->invariant, serial.violation->invariant)
        << spec.name << " with " << workers << " workers";
    EXPECT_EQ(par.violation->is_transition_invariant,
              serial.violation->is_transition_invariant);
    EXPECT_EQ(par.violation->trace.size(), serial.violation->trace.size());
  }
}

TEST(ParBfsToys, DieHardExploration) {
  Spec spec = toys::DieHard();
  spec.invariants.clear();
  ExpectExplorationEquivalent(spec);
}

TEST(ParBfsToys, DieHardMinimalCounterexample) {
  const Spec spec = toys::DieHard();
  ExpectSameMinimalViolation(spec);

  // The parallel trace is genuine: ends at big == 4 and every step follows
  // from its predecessor via some enabled action.
  ParBfsOptions popts;
  popts.workers = 4;
  const BfsResult r = ParallelBfsCheck(spec, popts);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->depth, 6u);
  EXPECT_EQ(r.violation->trace.back().state.field("big").int_v(), 4);
  for (size_t i = 1; i < r.violation->trace.size(); ++i) {
    auto succs = ExpandAll(spec, r.violation->trace[i - 1].state, nullptr);
    bool found = false;
    for (const Successor& s : succs) {
      found = found || s.state == r.violation->trace[i].state;
    }
    EXPECT_TRUE(found) << "disconnected parallel trace at step " << i;
  }
}

TEST(ParBfsToys, CounterExploration) {
  ExpectExplorationEquivalent(toys::Counter(10));
}

TEST(ParBfsToys, DeepCounterStressesLevelBarrier) {
  // 500 one-state levels: the degenerate frontier shape for a level-
  // synchronized engine (every level is a barrier with one unit of work).
  ExpectExplorationEquivalent(toys::Counter(500));
}

TEST(ParBfsToys, TransitionInvariantViolation) {
  ExpectSameMinimalViolation(toys::Counter(10, /*with_bad_jump=*/true));
}

TEST(ParBfsToys, TokenRingWithAndWithoutSymmetry) {
  const Spec spec = toys::TokenRing(3, 3);
  BfsOptions with;
  with.use_symmetry = true;
  ExpectExplorationEquivalent(spec, with);
  BfsOptions without;
  without.use_symmetry = false;
  ExpectExplorationEquivalent(spec, without);
}

TEST(ParBfsToys, ConstraintBoundsExpansion) {
  Spec spec = toys::Counter(1000);
  spec.constraint = [](const State& s) { return s.field("x").int_v() <= 7; };
  ExpectExplorationEquivalent(spec);
}

TEST(ParBfsToys, MaxDepthBounds) {
  BfsOptions base;
  base.max_depth = 5;
  ExpectExplorationEquivalent(toys::Counter(100), base);
}

TEST(ParBfsToys, StateLimitStopsWithoutExhausting) {
  ParBfsOptions popts;
  popts.base.max_distinct_states = 50;
  popts.workers = 4;
  popts.chunk_size = 4;
  const BfsResult r = ParallelBfsCheck(toys::Counter(1000), popts);
  EXPECT_TRUE(r.hit_state_limit);
  EXPECT_FALSE(r.exhausted);
  // Workers finish in-flight chunks after the limit fires, so the count may
  // overshoot the limit but never miss it.
  EXPECT_GE(r.distinct_states, 50u);
}

TEST(ParBfsHarness, SmallRaftConfigEquivalence) {
  RaftProfile p = GetRaftProfile("pysyncobj", /*with_bugs=*/false);
  p.budget.max_timeouts = 2;
  p.budget.max_client_requests = 1;
  p.budget.max_crashes = 0;
  p.budget.max_restarts = 0;
  p.budget.max_partitions = 0;
  p.budget.max_term = 2;
  p.budget.max_msg_buffer = 2;
  ExpectExplorationEquivalent(MakeRaftSpec(p));
}

ZabProfile SmallZabProfile() {
  ZabProfile p = GetZabProfile(/*with_bugs=*/false);
  p.budget.max_timeouts = 2;
  p.budget.max_client_requests = 1;
  p.budget.max_rounds = 1;
  p.budget.max_epoch = 1;
  p.budget.max_history = 1;
  p.budget.max_msg_buffer = 2;
  return p;
}

TEST(ParBfsHarness, SmallZabConfigEquivalence) {
  // Symmetry off: Zab's fast leader election tie-breaks on the server id
  // (VoteBetter), so the declared symmetry is an abstraction rather than a
  // true symmetry of the actions — under reduction the reachable set depends
  // on which orbit representative is stored first. Without symmetry the
  // parallel engine matches serial exactly at every worker count.
  BfsOptions base;
  base.use_symmetry = false;
  ExpectExplorationEquivalent(MakeZabSpec(SmallZabProfile()), base);
}

TEST(ParBfsHarness, ZabSymmetrySingleWorkerMatchesSerial) {
  // With symmetry on, representative choice is order-dependent (see above),
  // so only a single worker preserves serial's exploration order exactly;
  // more workers still explore the full abstraction soundly but the distinct
  // count may differ by which representatives won (documented in
  // src/par/parallel_bfs.h).
  const Spec spec = MakeZabSpec(SmallZabProfile());
  const BfsResult serial = BfsCheck(spec);
  ASSERT_FALSE(serial.violation.has_value());
  ParBfsOptions popts;
  popts.workers = 1;
  const BfsResult par = ParallelBfsCheck(spec, popts);
  EXPECT_EQ(par.distinct_states, serial.distinct_states);
  EXPECT_EQ(par.depth_reached, serial.depth_reached);
  EXPECT_EQ(par.exhausted, serial.exhausted);
  EXPECT_EQ(par.deadlock_states, serial.deadlock_states);

  ParBfsOptions four;
  four.workers = 4;
  const BfsResult par4 = ParallelBfsCheck(spec, four);
  EXPECT_TRUE(par4.exhausted);
  EXPECT_FALSE(par4.violation.has_value());
  EXPECT_EQ(par4.depth_reached, serial.depth_reached);
}

// Two seeded Table-2 bugs: parallel exploration reports the same minimal
// violation depth and property as serial BFS (workers = 1, 2, 8).
TEST(ParBfsHarness, SeededBugMinimalDepthMatchesSerial) {
  if (kTsanBuild) {
    GTEST_SKIP() << "wall-clock-budgeted hunts; the ~10x TSan slowdown would "
                    "expire the budget before the bug is found";
  }
  for (const char* id : {"PySyncObj#2", "RaftOS#1"}) {
    const conformance::BugInfo& bug = conformance::FindBug(id);
    const Spec spec = MakeRaftSpec(conformance::MakeBugProfile(bug));
    BfsOptions base;
    base.time_budget_s = 300;
    ExpectSameMinimalViolation(spec, base);
  }
}

TEST(ShardedFingerprintSet, InsertLookupAndCount) {
  par::ShardedFingerprintSet set(/*shard_count_log2=*/3);
  EXPECT_EQ(set.shard_count(), 8);
  EXPECT_TRUE(set.InsertIfAbsent(7, 7));
  EXPECT_FALSE(set.InsertIfAbsent(7, 9));  // parent of first insert wins
  EXPECT_TRUE(set.InsertIfAbsent(~uint64_t{0}, 7));
  EXPECT_EQ(set.size(), 2u);
  ASSERT_TRUE(set.Parent(7).has_value());
  EXPECT_EQ(*set.Parent(7), 7u);
  ASSERT_TRUE(set.Parent(~uint64_t{0}).has_value());
  EXPECT_EQ(*set.Parent(~uint64_t{0}), 7u);
  EXPECT_FALSE(set.Parent(42).has_value());
}

TEST(ShardedFingerprintSet, ConcurrentInsertersCountExactly) {
  par::ShardedFingerprintSet set(/*shard_count_log2=*/4);
  set.Reserve(1 << 16);
  constexpr int kThreads = 8;
  constexpr uint64_t kDistinct = 40000;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> first_inserts{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&set, &first_inserts, t] {
      // Every thread races over the SAME keys, spread across shards by a
      // SplitMix-style mix so high bits vary.
      uint64_t wins = 0;
      for (uint64_t i = 0; i < kDistinct; ++i) {
        const uint64_t start = (t % 2 == 0) ? 0 : kDistinct - 1;  // opposite orders
        const uint64_t k = (t % 2 == 0) ? i : start - i;
        const uint64_t fp = (k + 1) * 0x9E3779B97F4A7C15ULL;
        wins += set.InsertIfAbsent(fp, k) ? 1 : 0;
      }
      first_inserts.fetch_add(wins);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // Each key is inserted exactly once across all racing threads.
  EXPECT_EQ(set.size(), kDistinct);
  EXPECT_EQ(first_inserts.load(), kDistinct);
}

TEST(WorkQueue, ChunksPartitionTheRange) {
  par::WorkQueue queue(103, 10);
  std::vector<bool> seen(103, false);
  size_t b = 0;
  size_t e = 0;
  while (queue.NextChunk(&b, &e)) {
    ASSERT_LE(e, 103u);
    for (size_t i = b; i < e; ++i) {
      EXPECT_FALSE(seen[i]) << "index claimed twice: " << i;
      seen[i] = true;
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "index never claimed: " << i;
  }
}

TEST(WorkQueue, ConcurrentClaimsAreDisjointAndComplete) {
  constexpr size_t kTotal = 100000;
  par::WorkQueue queue(kTotal, 64);
  std::atomic<uint64_t> claimed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&queue, &claimed] {
      size_t b = 0;
      size_t e = 0;
      uint64_t local = 0;
      while (queue.NextChunk(&b, &e)) {
        local += e - b;
      }
      claimed.fetch_add(local);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(claimed.load(), kTotal);
}

}  // namespace
}  // namespace sandtable
