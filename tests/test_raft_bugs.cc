// Table 2 reproduction at unit-test scale: each seeded specification-level
// Raft bug from the catalog is found by bounded BFS, firing the expected
// safety property. (ZooKeeper#1 is covered by test_zabspec; conformance-stage
// bugs by test_conformance.)
#include <gtest/gtest.h>

#include <algorithm>

#include "src/conformance/bug_catalog.h"
#include "src/mc/bfs.h"
#include "src/raftspec/raft_spec.h"

namespace sandtable {
namespace {

using conformance::BugCatalog;
using conformance::BugInfo;
using conformance::BugStage;
using conformance::MakeBugProfile;

class RaftBugHuntTest : public ::testing::TestWithParam<const BugInfo*> {};

TEST_P(RaftBugHuntTest, BfsFindsSeededBug) {
  const BugInfo& bug = *GetParam();
  const Spec spec = MakeRaftSpec(MakeBugProfile(bug));
  BfsOptions opts;
  opts.time_budget_s = std::max(300.0, bug.min_hunt_s);
  const BfsResult r = BfsCheck(spec, opts);
  ASSERT_TRUE(r.violation.has_value())
      << bug.id << ": no violation in " << r.distinct_states
      << " states (exhausted=" << r.exhausted << ")";
  EXPECT_EQ(r.violation->invariant, bug.invariant)
      << bug.id << " fired the wrong property at depth " << r.violation->depth << "\n"
      << TraceToString(r.violation->trace);
  EXPECT_GT(r.violation->depth, 0u);
}

std::vector<const BugInfo*> VerificationRaftBugs() {
  std::vector<const BugInfo*> bugs;
  for (const BugInfo& bug : BugCatalog()) {
    if (bug.stage == BugStage::kVerification && !bug.zab_bug &&
        // WRaft#2 shares its seed and property with WRaft#1.
        bug.id != "WRaft#2") {
      bugs.push_back(&bug);
    }
  }
  return bugs;
}

INSTANTIATE_TEST_SUITE_P(Table2, RaftBugHuntTest,
                         ::testing::ValuesIn(VerificationRaftBugs()),
                         [](const ::testing::TestParamInfo<const BugInfo*>& info) {
                           std::string name = info.param->id;
                           for (char& c : name) {
                             if (c == '#' || c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// Fixing the bug makes the same bounded space violation-free (§3.4 fix
// validation) — spot-checked on two representative bugs.
TEST(RaftBugFix, FixValidationClearsViolation) {
  for (const char* id : {"PySyncObj#2", "RaftOS#1"}) {
    RaftProfile p = MakeBugProfile(conformance::FindBug(id));
    p.bugs = RaftBugs{};  // the fix
    const Spec spec = MakeRaftSpec(p);
    BfsOptions opts;
    opts.max_distinct_states = 400000;
    opts.time_budget_s = 120;
    const BfsResult r = BfsCheck(spec, opts);
    EXPECT_FALSE(r.violation.has_value())
        << id << ": " << (r.violation ? r.violation->invariant : "");
  }
}

}  // namespace
}  // namespace sandtable
