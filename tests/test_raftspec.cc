#include <gtest/gtest.h>

#include "src/mc/bfs.h"
#include "src/mc/expand.h"
#include "src/mc/random_walk.h"
#include "src/net/specnet.h"
#include "src/raftspec/raft_common.h"
#include "src/raftspec/raft_spec.h"

namespace sandtable {
namespace {

using namespace raftspec;  // NOLINT(build/namespaces): test vocabulary

RaftProfile SmallProfile(const std::string& system, bool with_bugs) {
  RaftProfile p = GetRaftProfile(system, with_bugs);
  // Shrink the budget so BFS exhausts quickly in unit tests.
  p.budget.max_timeouts = 2;
  p.budget.max_client_requests = 1;
  p.budget.max_crashes = 0;
  p.budget.max_restarts = 0;
  p.budget.max_partitions = 0;
  p.budget.max_drops = 0;
  p.budget.max_dups = 0;
  p.budget.max_term = 2;
  p.budget.max_msg_buffer = 3;
  p.budget.max_snapshots = 1;
  return p;
}

TEST(RaftSpec, InitialStateShape) {
  const Spec spec = MakeRaftSpec(GetRaftProfile("pysyncobj", false));
  ASSERT_EQ(spec.init_states.size(), 1u);
  const State& s = spec.init_states[0];
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(Role(s, NodeV(i)).str_v(), kRoleFollower);
    EXPECT_EQ(CurrentTerm(s, NodeV(i)), 0);
    EXPECT_EQ(LastIndex(s, NodeV(i)), 0);
    EXPECT_EQ(CommitIndex(s, NodeV(i)), 0);
    EXPECT_EQ(VotedFor(s, NodeV(i)), NoneValue());
  }
  EXPECT_FALSE(s.has_field(kVarPreVotesGranted));
  EXPECT_FALSE(s.has_field(kVarSnapshotIndex));
  EXPECT_TRUE(spec.symmetry.has_value());
}

TEST(RaftSpec, FeatureFlagsShapeStateAndActions) {
  const Spec daos = MakeRaftSpec(GetRaftProfile("daosraft", false));
  EXPECT_TRUE(daos.init_states[0].has_field(kVarPreVotesGranted));
  EXPECT_TRUE(daos.init_states[0].has_field(kVarSnapshotIndex));

  auto has_action = [](const Spec& spec, const std::string& name) {
    for (const Action& a : spec.actions) {
      if (a.name == name) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_action(daos, "HandlePreVoteRequest"));
  EXPECT_TRUE(has_action(daos, "HandleInstallSnapshotRequest"));
  EXPECT_TRUE(has_action(daos, "PartitionStart"));

  const Spec wraft = MakeRaftSpec(GetRaftProfile("wraft", false));
  EXPECT_TRUE(has_action(wraft, "DropMessage"));
  EXPECT_TRUE(has_action(wraft, "DuplicateMessage"));
  EXPECT_FALSE(has_action(wraft, "PartitionStart"));
  EXPECT_FALSE(has_action(wraft, "HandlePreVoteRequest"));

  const Spec kv = MakeRaftSpec(GetRaftProfile("xraftkv", false));
  EXPECT_TRUE(has_action(kv, "ClientRead"));
  EXPECT_FALSE(has_action(kv, "HandlePreVoteRequest"));
}

TEST(RaftSpec, TimeoutLeadsToElection) {
  const Spec spec = MakeRaftSpec(SmallProfile("pysyncobj", false));
  auto succs = ExpandAll(spec, spec.init_states[0], nullptr);
  // Only Timeout is enabled initially: one successor per node.
  ASSERT_EQ(succs.size(), 3u);
  for (const Successor& s : succs) {
    EXPECT_EQ(s.label.action, "Timeout");
    const int node = static_cast<int>(s.label.params["node"].as_int());
    EXPECT_EQ(Role(s.state, NodeV(node)).str_v(), kRoleCandidate);
    EXPECT_EQ(CurrentTerm(s.state, NodeV(node)), 1);
    EXPECT_EQ(VotedFor(s.state, NodeV(node)), NodeV(node));
    // RequestVote sent to both peers.
    EXPECT_EQ(specnet::TotalInFlight(s.state.field(kVarNet)), 2);
  }
}

TEST(RaftSpec, PreVoteTimeoutDoesNotBumpTerm) {
  const Spec spec = MakeRaftSpec(SmallProfile("xraft", false));
  auto succs = ExpandAll(spec, spec.init_states[0], nullptr);
  ASSERT_GE(succs.size(), 3u);
  for (const Successor& s : succs) {
    if (s.label.action != "Timeout") {
      continue;
    }
    const int node = static_cast<int>(s.label.params["node"].as_int());
    EXPECT_EQ(Role(s.state, NodeV(node)).str_v(), kRolePreCandidate);
    EXPECT_EQ(CurrentTerm(s.state, NodeV(node)), 0);
  }
}

// A full election through message handling: candidate gets a vote, wins, and
// sends initial heartbeats.
TEST(RaftSpec, ElectionRoundTrip) {
  const Spec spec = MakeRaftSpec(SmallProfile("pysyncobj", false));
  State s = spec.init_states[0];
  // n0 times out.
  auto succs = ExpandAll(spec, s, nullptr);
  s = succs[0].state;
  ASSERT_EQ(succs[0].label.params["node"].as_int(), 0);
  // Deliver one RequestVote (to n1 or n2) and its grant.
  bool became_leader = false;
  for (int steps = 0; steps < 10 && !became_leader; ++steps) {
    auto next = ExpandAll(spec, s, nullptr);
    ASSERT_FALSE(next.empty());
    // Prefer message deliveries to drive the election forward.
    const Successor* pick = nullptr;
    for (const Successor& cand : next) {
      if (cand.label.kind == EventKind::kMessage) {
        pick = &cand;
        break;
      }
    }
    ASSERT_NE(pick, nullptr);
    s = pick->state;
    became_leader = Role(s, NodeV(0)).str_v() == kRoleLeader;
  }
  EXPECT_TRUE(became_leader);
  EXPECT_EQ(VotedFor(s, NodeV(0)), NodeV(0));
}

struct ExhaustCase {
  const char* system;
};

class RaftSpecExhaustTest : public ::testing::TestWithParam<ExhaustCase> {};

// Property sweep: with all bug switches off, bounded BFS finds no safety
// violation in any system profile (the fixed specs of Table 3).
TEST_P(RaftSpecExhaustTest, NoViolationInBoundedSpace) {
  const Spec spec = MakeRaftSpec(SmallProfile(GetParam().system, /*with_bugs=*/false));
  BfsOptions opts;
  opts.max_distinct_states = 300000;
  opts.time_budget_s = 120;
  const BfsResult r = BfsCheck(spec, opts);
  if (r.violation.has_value()) {
    FAIL() << "unexpected violation of " << r.violation->invariant << " in "
           << GetParam().system << " at depth " << r.violation->depth << "\n"
           << TraceToString(r.violation->trace);
  }
  EXPECT_GT(r.distinct_states, 100u);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, RaftSpecExhaustTest,
                         ::testing::Values(ExhaustCase{"pysyncobj"}, ExhaustCase{"wraft"},
                                           ExhaustCase{"redisraft"}, ExhaustCase{"daosraft"},
                                           ExhaustCase{"raftos"}, ExhaustCase{"xraft"},
                                           ExhaustCase{"xraftkv"}),
                         [](const ::testing::TestParamInfo<ExhaustCase>& info) {
                           return info.param.system;
                         });

// Random walks over the buggy full profiles still satisfy the structural
// TypeOK invariant (the seeded bugs are semantic, not crashes).
TEST(RaftSpec, RandomWalkTypeSafety) {
  for (const std::string& system : RaftSystemNames()) {
    const Spec spec = MakeRaftSpec(SmallProfile(system, true));
    Rng rng(7);
    WalkOptions opts;
    opts.max_depth = 40;
    for (int i = 0; i < 20; ++i) {
      const WalkResult r = RandomWalk(spec, opts, rng);
      EXPECT_GT(r.depth, 0u) << system;
    }
  }
}

TEST(RaftSpec, SymmetryCanonicalizationConsistent) {
  const Spec spec = MakeRaftSpec(SmallProfile("pysyncobj", false));
  // Timing out n0 vs n2 yields symmetric states: same canonical fingerprint.
  auto succs = ExpandAll(spec, spec.init_states[0], nullptr);
  ASSERT_EQ(succs.size(), 3u);
  const uint64_t fp0 = Fingerprint(spec, succs[0].state, true);
  const uint64_t fp2 = Fingerprint(spec, succs[2].state, true);
  EXPECT_EQ(fp0, fp2);
  EXPECT_NE(Fingerprint(spec, succs[0].state, false),
            Fingerprint(spec, succs[2].state, false));
}

}  // namespace
}  // namespace sandtable
