#include <gtest/gtest.h>

#include "src/mc/ranking.h"
#include "tests/toy_specs.h"

namespace sandtable {
namespace {

TEST(Ranking, DefaultOrderPrefersBranchesThenDiversityThenSmallDepth) {
  ConstraintScore a{"a", 3.0, 2.0, 10.0, 1};
  ConstraintScore b{"b", 2.0, 5.0, 1.0, 1};
  EXPECT_TRUE(DefaultConstraintOrder(a, b));  // more branches wins

  a.avg_branches = b.avg_branches = 2.0;
  EXPECT_FALSE(DefaultConstraintOrder(a, b));  // b has more event kinds

  b.avg_event_kinds = a.avg_event_kinds = 2.0;
  a.avg_depth = 5.0;
  b.avg_depth = 9.0;
  EXPECT_TRUE(DefaultConstraintOrder(a, b));  // smaller depth wins

  a.avg_depth = b.avg_depth;
  EXPECT_TRUE(DefaultConstraintOrder(a, b));  // tie broken by name
}

TEST(Ranking, RanksCounterBudgets) {
  // Factory: a counter bounded by the constraint's "max" value. Larger max
  // means deeper walks with the same branch count, so the default order
  // ranks the smaller budget first (equal coverage, smaller space).
  SpecFactory factory = [](const NamedParams& config, const NamedParams& constraint) {
    return toys::Counter(constraint.Get("max", 1));
  };
  NamedParams config{"c3", {}};
  NamedParams small{"small", {{"max", 4}}};
  NamedParams large{"large", {{"max", 40}}};

  RankingOptions opts;
  opts.walks_per_pair = 8;
  opts.max_walk_depth = 100;
  auto rankings = RankConstraints(factory, {config}, {large, small}, opts);
  ASSERT_EQ(rankings.size(), 1u);
  EXPECT_EQ(rankings[0].config_name, "c3");
  ASSERT_EQ(rankings[0].ranked.size(), 2u);
  EXPECT_EQ(rankings[0].ranked[0].constraint_name, "small");
  EXPECT_EQ(rankings[0].ranked[0].avg_depth, 4.0);
  EXPECT_EQ(rankings[0].ranked[1].avg_depth, 40.0);
  // Both hit the two branches (even/odd).
  EXPECT_EQ(rankings[0].ranked[0].avg_branches, 2.0);
}

TEST(Ranking, CustomSorterInstalled) {
  SpecFactory factory = [](const NamedParams& config, const NamedParams& constraint) {
    return toys::Counter(constraint.Get("max", 1));
  };
  NamedParams config{"c", {}};
  NamedParams small{"small", {{"max", 4}}};
  NamedParams large{"large", {{"max", 40}}};
  RankingOptions opts;
  opts.walks_per_pair = 4;
  // Invert the depth preference (§3.3: "developers can extend SandTable to
  // install different sorting functions").
  opts.sorter = [](const ConstraintScore& a, const ConstraintScore& b) {
    return a.avg_depth > b.avg_depth;
  };
  auto rankings = RankConstraints(factory, {config}, {small, large}, opts);
  EXPECT_EQ(rankings[0].ranked[0].constraint_name, "large");
}

TEST(Ranking, MultipleConfigs) {
  SpecFactory factory = [](const NamedParams& config, const NamedParams& constraint) {
    return toys::Counter(config.Get("scale", 1) * constraint.Get("max", 1));
  };
  NamedParams c1{"c1", {{"scale", 1}}};
  NamedParams c2{"c2", {{"scale", 2}}};
  NamedParams k{"k", {{"max", 3}}};
  RankingOptions opts;
  opts.walks_per_pair = 2;
  auto rankings = RankConstraints(factory, {c1, c2}, {k}, opts);
  ASSERT_EQ(rankings.size(), 2u);
  EXPECT_EQ(rankings[0].ranked[0].avg_depth, 3.0);
  EXPECT_EQ(rankings[1].ranked[0].avg_depth, 6.0);
}

TEST(Ranking, NamedParamsGetDefault) {
  NamedParams p{"p", {{"a", 1}}};
  EXPECT_EQ(p.Get("a"), 1);
  EXPECT_EQ(p.Get("missing", 42), 42);
}

}  // namespace
}  // namespace sandtable
