// Tests for src/serve: the wire protocol, the multi-tenant scheduler, the
// HTTP metrics surface, job parameter validation, and an end-to-end daemon
// exercise (in-process Server + Client over a Unix socket) pinning down the
// ISSUE acceptance criterion: concurrent jobs stream progress and return the
// same result documents a direct engine run produces, and GET /metrics
// reflects job counts both during and after the run.
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/serve/client.h"
#include "src/serve/http_metrics.h"
#include "src/serve/job.h"
#include "src/serve/scheduler.h"
#include "src/serve/server.h"
#include "src/serve/wire.h"
#include "src/util/json.h"
#include "src/util/stop_token.h"

namespace sandtable {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Wire protocol

TEST(Wire, ParseSubmitRequest) {
  auto r = ParseRequest(
      R"({"op":"submit","kind":"check","tenant":"ci","req":7,)"
      R"("params":{"max_states":100}})");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().op, Request::Op::kSubmit);
  EXPECT_EQ(r.value().kind, "check");
  EXPECT_EQ(r.value().tenant, "ci");
  EXPECT_EQ(r.value().req_token.as_int(), 7);
  EXPECT_EQ(r.value().params["max_states"].as_int(), 100);
}

TEST(Wire, ParseCancelStatusPing) {
  auto c = ParseRequest(R"({"op":"cancel","job":3})");
  ASSERT_TRUE(c.ok()) << c.error();
  EXPECT_EQ(c.value().op, Request::Op::kCancel);
  EXPECT_EQ(c.value().job, 3u);

  auto s = ParseRequest(R"({"op":"status","job":9})");
  ASSERT_TRUE(s.ok()) << s.error();
  EXPECT_EQ(s.value().op, Request::Op::kStatus);
  EXPECT_EQ(s.value().job, 9u);

  auto p = ParseRequest(R"({"op":"ping"})");
  ASSERT_TRUE(p.ok()) << p.error();
  EXPECT_EQ(p.value().op, Request::Op::kPing);
}

TEST(Wire, ParseRequestRejectsMalformedLines) {
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[1,2]").ok());          // not an object
  EXPECT_FALSE(ParseRequest(R"({"kind":"x"})").ok());  // missing op
  EXPECT_FALSE(ParseRequest(R"({"op":"dance"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"cancel"})").ok());  // missing job
  EXPECT_FALSE(ParseRequest(R"({"op":"submit"})").ok());  // missing kind
  auto unknown = ParseRequest(R"({"op":"dance"})");
  EXPECT_NE(unknown.error().find("dance"), std::string::npos);
}

TEST(Wire, ProgressFrameTagsJobId) {
  JsonObject doc;
  doc["type"] = Json("progress");
  doc["distinct"] = Json(42);
  Json f = ProgressFrame(5, Json(std::move(doc)));
  EXPECT_EQ(f["type"].as_string(), "progress");
  EXPECT_EQ(f["job"].as_int(), 5);
  EXPECT_EQ(f["distinct"].as_int(), 42);
}

TEST(Wire, ProgressFrameWrapsNonObjectAsLog) {
  Json f = ProgressFrame(2, Json("free-form engine chatter"));
  EXPECT_EQ(f["type"].as_string(), "log");
  EXPECT_EQ(f["job"].as_int(), 2);
}

TEST(Wire, ResultAndAckFrames) {
  Json r = ResultFrame(8, "done", Json(1), 0.25, 1.5);
  EXPECT_EQ(r["type"].as_string(), "result");
  EXPECT_EQ(r["job"].as_int(), 8);
  EXPECT_EQ(r["status"].as_string(), "done");
  EXPECT_EQ(r["result"].as_int(), 1);

  Json a = AckFrame(Json("tok"), 8, "queued", 3);
  EXPECT_EQ(a["type"].as_string(), "ack");
  EXPECT_EQ(a["req"].as_string(), "tok");
  EXPECT_EQ(a["job"].as_int(), 8);
  EXPECT_EQ(a["queue_depth"].as_int(), 3);

  Json e = ErrorFrame(Json(4), ErrorCode::kQueueFull, "queue full");
  EXPECT_EQ(e["type"].as_string(), "error");
  EXPECT_EQ(e["code"].as_string(), "queue_full");
  EXPECT_EQ(e["req"].as_int(), 4);
}

// ---------------------------------------------------------------------------
// Scheduler

// Thread-safe frame collector used as a job's FrameSink.
struct FrameLog {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Json> frames;

  FrameSink Sink() {
    return [this](const Json& f) {
      // Notify under the lock: WaitResult's predicate runs with `mu` held, so
      // it cannot observe the frame, return, and let the test destroy this
      // FrameLog while the worker is still inside notify_all.
      std::lock_guard<std::mutex> lock(mu);
      frames.push_back(f);
      cv.notify_all();
    };
  }

  // Waits for `job`'s result frame and returns it.
  Json WaitResult(uint64_t job, double timeout_s = 10) {
    std::unique_lock<std::mutex> lock(mu);
    Json out;
    cv.wait_for(lock, std::chrono::duration<double>(timeout_s), [&] {
      for (const Json& f : frames) {
        if (f["type"].as_string() == "result" &&
            static_cast<uint64_t>(f["job"].as_int()) == job) {
          out = f;
          return true;
        }
      }
      return false;
    });
    return out;
  }

  size_t CountType(const std::string& type) {
    std::lock_guard<std::mutex> lock(mu);
    size_t n = 0;
    for (const Json& f : frames) {
      if (f["type"].as_string() == type) {
        ++n;
      }
    }
    return n;
  }
};

// A job that blocks until opened (or its StopToken is raised) and records
// when it actually started running.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  bool entered = false;

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }

  void WaitEntered(double timeout_s = 10) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::duration<double>(timeout_s),
                [&] { return entered; });
  }

  JobFn Job() {
    return [this](const ProgressSink&, const StopToken& stop) {
      {
        // Notify while holding the lock (see FrameLog::Sink for why).
        std::lock_guard<std::mutex> lock(mu);
        entered = true;
        cv.notify_all();
      }
      std::unique_lock<std::mutex> lock(mu);
      while (!open && !stop.stop_requested()) {
        cv.wait_for(lock, std::chrono::milliseconds(5));
      }
      JobOutcome out;
      out.status = stop.stop_requested() ? "cancelled" : "done";
      return out;
    };
  }
};

// A trivially-completing job that appends `tag` to a shared order log.
JobFn RecordingJob(std::vector<std::string>* order, std::mutex* mu,
                   const std::string& tag) {
  return [=](const ProgressSink&, const StopToken&) {
    {
      std::lock_guard<std::mutex> lock(*mu);
      order->push_back(tag);
    }
    JobOutcome out;
    out.status = "done";
    out.result = Json(tag);
    return out;
  };
}

TEST(Scheduler, FifoWithinOneTenant) {
  SchedulerOptions opts;
  opts.workers = 1;
  FrameLog log;
  Gate gate;
  Scheduler sched(opts);
  std::vector<std::string> order;
  std::mutex order_mu;

  // The blocker occupies the single worker so the later submits stay queued
  // in submission order.
  auto blocker = sched.Submit("t", "test", gate.Job(), log.Sink());
  ASSERT_TRUE(blocker.ok);
  gate.WaitEntered();
  std::vector<uint64_t> ids;
  for (const std::string& tag : {"a", "b", "c"}) {
    auto r = sched.Submit("t", "test", RecordingJob(&order, &order_mu, tag),
                          log.Sink());
    ASSERT_TRUE(r.ok);
    ids.push_back(r.job);
  }
  gate.Open();
  ASSERT_TRUE(sched.WaitIdle(10));
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
  for (uint64_t id : ids) {
    EXPECT_EQ(log.WaitResult(id)["status"].as_string(), "done");
  }
}

TEST(Scheduler, RoundRobinAcrossTenants) {
  SchedulerOptions opts;
  opts.workers = 1;
  FrameLog log;
  Gate gate;
  Scheduler sched(opts);
  std::vector<std::string> order;
  std::mutex order_mu;

  ASSERT_TRUE(sched.Submit("z", "test", gate.Job(), log.Sink()).ok);
  gate.WaitEntered();
  // Tenant a floods three jobs before tenant b submits two; round-robin must
  // interleave them rather than draining a first.
  for (const std::string& tag : {"a1", "a2", "a3"}) {
    ASSERT_TRUE(
        sched.Submit("a", "test", RecordingJob(&order, &order_mu, tag), log.Sink())
            .ok);
  }
  for (const std::string& tag : {"b1", "b2"}) {
    ASSERT_TRUE(
        sched.Submit("b", "test", RecordingJob(&order, &order_mu, tag), log.Sink())
            .ok);
  }
  gate.Open();
  ASSERT_TRUE(sched.WaitIdle(10));
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "b1", "a2", "b2", "a3"}));
}

TEST(Scheduler, QueueFullRejection) {
  obs::MetricsRegistry registry;
  SchedulerOptions opts;
  opts.workers = 1;
  opts.max_queued = 2;
  opts.metrics = &registry;
  FrameLog log;
  Gate gate;
  Scheduler sched(opts);

  ASSERT_TRUE(sched.Submit("t", "test", gate.Job(), log.Sink()).ok);
  gate.WaitEntered();  // worker busy; queue is now empty
  std::vector<std::string> order;
  std::mutex order_mu;
  ASSERT_TRUE(
      sched.Submit("t", "test", RecordingJob(&order, &order_mu, "x"), log.Sink()).ok);
  ASSERT_TRUE(
      sched.Submit("t", "test", RecordingJob(&order, &order_mu, "y"), log.Sink()).ok);

  auto rejected =
      sched.Submit("t", "test", RecordingJob(&order, &order_mu, "z"), log.Sink());
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, ErrorCode::kQueueFull);
  EXPECT_FALSE(rejected.message.empty());
  EXPECT_EQ(sched.Stats().rejected, 1u);
  EXPECT_EQ(registry.GetCounter("serve.jobs_rejected").Value(), 1u);

  gate.Open();
  ASSERT_TRUE(sched.WaitIdle(10));
  EXPECT_EQ(order, (std::vector<std::string>{"x", "y"}));  // z never ran
}

TEST(Scheduler, PerTenantQueueCap) {
  SchedulerOptions opts;
  opts.workers = 1;
  opts.max_queued_per_tenant = 1;
  FrameLog log;
  Gate gate;
  Scheduler sched(opts);

  ASSERT_TRUE(sched.Submit("z", "test", gate.Job(), log.Sink()).ok);
  gate.WaitEntered();
  std::vector<std::string> order;
  std::mutex order_mu;
  ASSERT_TRUE(
      sched.Submit("a", "test", RecordingJob(&order, &order_mu, "a1"), log.Sink()).ok);
  auto rejected =
      sched.Submit("a", "test", RecordingJob(&order, &order_mu, "a2"), log.Sink());
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, ErrorCode::kTenantQueueFull);
  // The cap is per tenant: another tenant is still admitted.
  EXPECT_TRUE(
      sched.Submit("b", "test", RecordingJob(&order, &order_mu, "b1"), log.Sink()).ok);
  gate.Open();
  ASSERT_TRUE(sched.WaitIdle(10));
}

TEST(Scheduler, CancelQueuedJobEmitsResultImmediately) {
  SchedulerOptions opts;
  opts.workers = 1;
  FrameLog log;
  Gate gate;
  Scheduler sched(opts);
  std::atomic<bool> ran{false};

  ASSERT_TRUE(sched.Submit("t", "test", gate.Job(), log.Sink()).ok);
  gate.WaitEntered();
  auto queued = sched.Submit(
      "t", "test",
      [&](const ProgressSink&, const StopToken&) {
        ran = true;
        return JobOutcome{"done", Json()};
      },
      log.Sink());
  ASSERT_TRUE(queued.ok);

  EXPECT_TRUE(sched.Cancel(queued.job));
  // The cancelled result frame arrives without the job ever running.
  Json result = log.WaitResult(queued.job);
  EXPECT_EQ(result["status"].as_string(), "cancelled");
  auto record = sched.Status(queued.job);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kCancelled);

  gate.Open();
  ASSERT_TRUE(sched.WaitIdle(10));
  EXPECT_FALSE(ran.load());
  EXPECT_FALSE(sched.Cancel(queued.job));  // already finished
  EXPECT_FALSE(sched.Cancel(99999));       // never existed
}

TEST(Scheduler, CancelRunningJobFreesTheWorkerSlot) {
  SchedulerOptions opts;
  opts.workers = 1;
  FrameLog log;
  Gate gate;  // never opened: only cancellation can finish it
  Scheduler sched(opts);

  auto running = sched.Submit("t", "test", gate.Job(), log.Sink());
  ASSERT_TRUE(running.ok);
  gate.WaitEntered();
  EXPECT_TRUE(sched.Cancel(running.job));
  EXPECT_EQ(log.WaitResult(running.job)["status"].as_string(), "cancelled");

  // The freed slot runs the next job to completion.
  std::vector<std::string> order;
  std::mutex order_mu;
  auto next =
      sched.Submit("t", "test", RecordingJob(&order, &order_mu, "next"), log.Sink());
  ASSERT_TRUE(next.ok);
  EXPECT_EQ(log.WaitResult(next.job)["status"].as_string(), "done");
  EXPECT_EQ(sched.Stats().cancelled, 1u);
  EXPECT_EQ(sched.Stats().completed, 1u);
}

TEST(Scheduler, JobThatIgnoresItsTokenStillReportsCancelled) {
  SchedulerOptions opts;
  opts.workers = 1;
  FrameLog log;
  Gate gate;
  Scheduler sched(opts);

  // The job returns "done" even when its token is raised; the scheduler
  // overrides to cancelled because the caller observed the cancel ack.
  auto r = sched.Submit(
      "t", "test",
      [&](const ProgressSink&, const StopToken& stop) {
        {
          std::lock_guard<std::mutex> lock(gate.mu);
          gate.entered = true;
          gate.cv.notify_all();
        }
        while (!stop.stop_requested()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return JobOutcome{"done", Json()};
      },
      log.Sink());
  ASSERT_TRUE(r.ok);
  gate.WaitEntered();
  EXPECT_TRUE(sched.Cancel(r.job));
  EXPECT_EQ(log.WaitResult(r.job)["status"].as_string(), "cancelled");
}

TEST(Scheduler, ThrowingJobFailsWithoutKillingTheWorker) {
  SchedulerOptions opts;
  opts.workers = 1;
  FrameLog log;
  Scheduler sched(opts);

  auto bad = sched.Submit(
      "t", "test",
      [](const ProgressSink&, const StopToken&) -> JobOutcome {
        throw std::runtime_error("boom");
      },
      log.Sink());
  ASSERT_TRUE(bad.ok);
  Json result = log.WaitResult(bad.job);
  EXPECT_EQ(result["status"].as_string(), "failed");
  EXPECT_NE(result["result"]["error"].as_string().find("boom"),
            std::string::npos);
  EXPECT_EQ(sched.Stats().failed, 1u);

  // The worker survived: the next job completes.
  std::vector<std::string> order;
  std::mutex order_mu;
  auto next =
      sched.Submit("t", "test", RecordingJob(&order, &order_mu, "ok"), log.Sink());
  ASSERT_TRUE(next.ok);
  EXPECT_EQ(log.WaitResult(next.job)["status"].as_string(), "done");
}

TEST(Scheduler, ShutdownCancelsQueuedJobsAndRejectsNewOnes) {
  SchedulerOptions opts;
  opts.workers = 1;
  FrameLog log;
  Gate gate;
  Scheduler sched(opts);

  ASSERT_TRUE(sched.Submit("t", "test", gate.Job(), log.Sink()).ok);
  gate.WaitEntered();
  std::vector<std::string> order;
  std::mutex order_mu;
  auto queued =
      sched.Submit("t", "test", RecordingJob(&order, &order_mu, "q"), log.Sink());
  ASSERT_TRUE(queued.ok);

  sched.Shutdown();
  EXPECT_EQ(log.WaitResult(queued.job)["status"].as_string(), "cancelled");
  EXPECT_TRUE(order.empty());

  auto after = sched.Submit("t", "test",
                            RecordingJob(&order, &order_mu, "late"), log.Sink());
  EXPECT_FALSE(after.ok);
  EXPECT_EQ(after.code, ErrorCode::kShuttingDown);
}

TEST(Scheduler, CancelTenantOnlyTouchesThatTenant) {
  SchedulerOptions opts;
  opts.workers = 1;
  FrameLog log;
  Gate gate;
  Scheduler sched(opts);
  std::vector<std::string> order;
  std::mutex order_mu;

  ASSERT_TRUE(sched.Submit("z", "test", gate.Job(), log.Sink()).ok);
  gate.WaitEntered();
  auto a1 =
      sched.Submit("a", "test", RecordingJob(&order, &order_mu, "a1"), log.Sink());
  auto a2 =
      sched.Submit("a", "test", RecordingJob(&order, &order_mu, "a2"), log.Sink());
  auto b1 =
      sched.Submit("b", "test", RecordingJob(&order, &order_mu, "b1"), log.Sink());
  ASSERT_TRUE(a1.ok && a2.ok && b1.ok);

  EXPECT_EQ(sched.CancelTenant("a"), 2);
  EXPECT_EQ(log.WaitResult(a1.job)["status"].as_string(), "cancelled");
  EXPECT_EQ(log.WaitResult(a2.job)["status"].as_string(), "cancelled");
  gate.Open();
  ASSERT_TRUE(sched.WaitIdle(10));
  EXPECT_EQ(order, (std::vector<std::string>{"b1"}));
  EXPECT_EQ(log.WaitResult(b1.job)["status"].as_string(), "done");
}

TEST(Scheduler, GaugesTrackQueueAndRunningCounts) {
  obs::MetricsRegistry registry;
  SchedulerOptions opts;
  opts.workers = 1;
  opts.metrics = &registry;
  FrameLog log;
  Gate gate;
  Scheduler sched(opts);

  ASSERT_TRUE(sched.Submit("t", "test", gate.Job(), log.Sink()).ok);
  gate.WaitEntered();
  std::vector<std::string> order;
  std::mutex order_mu;
  ASSERT_TRUE(
      sched.Submit("t", "test", RecordingJob(&order, &order_mu, "q"), log.Sink()).ok);
  EXPECT_EQ(registry.GetGauge("serve.jobs_running").Value(), 1);
  EXPECT_EQ(registry.GetGauge("serve.jobs_queued").Value(), 1);
  gate.Open();
  ASSERT_TRUE(sched.WaitIdle(10));
  EXPECT_EQ(registry.GetGauge("serve.jobs_running").Value(), 0);
  EXPECT_EQ(registry.GetGauge("serve.jobs_queued").Value(), 0);
  EXPECT_EQ(registry.GetCounter("serve.jobs_submitted").Value(), 2u);
  EXPECT_EQ(registry.GetCounter("serve.jobs_completed").Value(), 2u);
}

// ---------------------------------------------------------------------------
// HTTP metrics surface

TEST(HttpMetrics, ParseWaitsForACompleteHead) {
  EXPECT_FALSE(ParseHttpRequest("GET /metrics HTTP/1.0\r\n").has_value());
  auto req = ParseHttpRequest("GET /metrics HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->path, "/metrics");
  // Bare-LF heads (nc users) parse too.
  auto lf = ParseHttpRequest("GET /healthz HTTP/1.0\n\n");
  ASSERT_TRUE(lf.has_value());
  EXPECT_EQ(lf->path, "/healthz");
  // A malformed request line completes as empty method/path (the server
  // answers 400) instead of wedging the connection.
  auto bad = ParseHttpRequest("garbage\r\n\r\n");
  ASSERT_TRUE(bad.has_value());
  EXPECT_TRUE(bad->method.empty());
}

TEST(HttpMetrics, ResponseFraming) {
  std::string resp = HttpResponse(200, "text/plain", "ok\n");
  EXPECT_EQ(resp.find("HTTP/1.0 200"), 0u);
  EXPECT_NE(resp.find("Content-Length: 3"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);
  EXPECT_NE(resp.find("\r\n\r\nok\n"), std::string::npos);
}

TEST(HttpMetrics, RenderPrometheusIncludesRegistryAndSchedulerStats) {
  obs::MetricsRegistry registry;
  registry.GetCounter("bfs.states_expanded").Add(123);
  registry.GetGauge("serve.jobs_running").Set(2);
  auto& h = registry.GetHistogram("bfs.depth");
  h.Record(1);
  h.Record(3);

  SchedulerStats stats;
  stats.submitted = 7;
  stats.completed = 4;
  stats.cancelled = 1;
  stats.rejected = 2;
  stats.queued = 1;
  stats.running = 2;

  const std::string text = RenderPrometheus(registry.Snapshot(), stats);
  // Dots sanitize to underscores and every name carries the prefix.
  EXPECT_NE(text.find("sandtable_bfs_states_expanded 123"), std::string::npos);
  EXPECT_NE(text.find("sandtable_serve_jobs_running 2"), std::string::npos);
  EXPECT_NE(text.find("sandtable_bfs_depth_count 2"), std::string::npos);
  EXPECT_NE(text.find("sandtable_scheduler_jobs_submitted_total 7"),
            std::string::npos);
  EXPECT_NE(text.find("sandtable_scheduler_jobs_rejected_total 2"),
            std::string::npos);
  EXPECT_NE(text.find("sandtable_scheduler_jobs_queued 1"), std::string::npos);
  EXPECT_NE(text.find("sandtable_scheduler_jobs_running 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Job parameter validation

Json ParseParams(const std::string& text) {
  auto r = Json::Parse(text);
  EXPECT_TRUE(r.ok()) << r.error();
  return r.value();
}

TEST(JobParams, ValidCheckParams) {
  auto r = ParseJobParams(
      "check", ParseParams(R"({"system":"pysyncobj","max_states":500,)"
                           R"("workers":2,"time_budget_ms":250})"));
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().kind, JobKind::kCheck);
  EXPECT_EQ(r.value().max_states, 500u);
  EXPECT_EQ(r.value().workers, 2);
  EXPECT_EQ(r.value().time_budget_ms, 250u);
}

TEST(JobParams, RejectsUnknownKindSystemBugAndKeys) {
  EXPECT_FALSE(ParseJobParams("explode", Json()).ok());
  EXPECT_FALSE(
      ParseJobParams("check", ParseParams(R"({"system":"nope"})")).ok());
  EXPECT_FALSE(ParseJobParams("check", ParseParams(R"({"bug":"NoSuch#1"})")).ok());
  // Unknown keys are rejected so client typos fail loudly.
  EXPECT_FALSE(
      ParseJobParams("check", ParseParams(R"({"max_statez":10})")).ok());
  // A simulate-only key is unknown to check.
  EXPECT_FALSE(ParseJobParams("check", ParseParams(R"({"traces":5})")).ok());
}

TEST(JobParams, RejectsInvalidShapes) {
  EXPECT_FALSE(ParseJobParams("check", ParseParams(R"({"workers":0})")).ok());
  EXPECT_FALSE(ParseJobParams("simulate", ParseParams(R"({"traces":0})")).ok());
  EXPECT_FALSE(
      ParseJobParams("check", ParseParams(R"({"channel":"carrier-pigeon"})")).ok());
  EXPECT_FALSE(ParseJobParams("check", ParseParams(R"([1,2])")).ok());
  // minimize needs a verification-stage bug; ckpt-info needs a directory.
  EXPECT_FALSE(ParseJobParams("minimize", Json()).ok());
  EXPECT_FALSE(ParseJobParams("ckpt-info", Json()).ok());
}

TEST(JobParams, RejectsIntFieldsPastIntMax) {
  // uint64 values past INT_MAX must be rejected, not wrapped: 4294967301
  // would otherwise silently become traces=5 and run a different job.
  EXPECT_FALSE(
      ParseJobParams("simulate", ParseParams(R"({"traces":4294967301})")).ok());
  EXPECT_FALSE(
      ParseJobParams("check", ParseParams(R"({"workers":4294967297})")).ok());
  // INT_MAX itself is still in range.
  EXPECT_TRUE(
      ParseJobParams("simulate", ParseParams(R"({"traces":2147483647})")).ok());
}

TEST(JobParams, KnownBugIsAccepted) {
  auto r = ParseJobParams("check", ParseParams(R"({"bug":"PySyncObj#1"})"));
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().bug, "PySyncObj#1");
}

// ---------------------------------------------------------------------------
// End-to-end: in-process Server + Client over a Unix socket

// Strips wall-clock-dependent keys and the per-run correlation id so two runs
// of the same deterministic job compare equal.
Json StripVolatile(const Json& doc) {
  if (doc.is_object()) {
    JsonObject out;
    for (const auto& [key, value] : doc.as_object()) {
      if (key == "seconds" || key == "queued_s" || key == "run_s" ||
          key == "run_id" || key == "expand_ns" || key == "ns" ||
          key == "top_actions") {
        continue;
      }
      out[key] = StripVolatile(value);
    }
    return Json(std::move(out));
  }
  if (doc.is_array()) {
    JsonArray out;
    for (const Json& v : doc.as_array()) {
      out.push_back(StripVolatile(v));
    }
    return Json(std::move(out));
  }
  return doc;
}

// Extracts the value of an un-labelled Prometheus sample, -1 if absent.
double PromValue(const std::string& body, const std::string& name) {
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::atof(line.c_str() + name.size() + 1);
    }
  }
  return -1;
}

class ServeE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    const int n = counter.fetch_add(1);
    sock_ = "/tmp/st-serve-" + std::to_string(::getpid()) + "-" +
            std::to_string(n) + ".sock";
    msock_ = sock_ + ".m";
  }

  void StartServer(int workers, int max_queued = 64, int max_workers_cap = 0) {
    ServerOptions opts;
    opts.unix_path = sock_;
    opts.metrics_unix_path = msock_;
    opts.scheduler.workers = workers;
    opts.scheduler.max_queued = max_queued;
    opts.max_workers_cap = max_workers_cap;
    opts.metrics = &registry_;
    server_ = std::make_unique<Server>(opts);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.error();
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
    }
  }

  Client Connect() {
    auto c = Client::ConnectUnix(sock_);
    EXPECT_TRUE(c.ok()) << c.error();
    Client client = std::move(c).value();
    auto hello = client.NextFrame(10);
    EXPECT_TRUE(hello.ok()) << hello.error();
    EXPECT_EQ(hello.value()["type"].as_string(), "hello");
    return client;
  }

  std::string Scrape() {
    auto body = Client::HttpGetUnix(msock_, "/metrics", 10);
    EXPECT_TRUE(body.ok()) << body.error();
    return body.ok() ? body.value() : std::string();
  }

  std::string sock_;
  std::string msock_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeE2E, HelloPingStats) {
  StartServer(2);
  Client client = Connect();
  ASSERT_TRUE(client.Send(ParseParams(R"({"op":"ping","req":1})")).ok());
  auto pong = client.NextFrame(10);
  ASSERT_TRUE(pong.ok()) << pong.error();
  EXPECT_EQ(pong.value()["type"].as_string(), "pong");
  EXPECT_EQ(pong.value()["req"].as_int(), 1);

  ASSERT_TRUE(client.Send(ParseParams(R"({"op":"stats","req":2})")).ok());
  auto stats = client.NextFrame(10);
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_EQ(stats.value()["type"].as_string(), "stats");
  EXPECT_EQ(stats.value()["submitted"].as_int(), 0);
}

TEST_F(ServeE2E, ProtocolErrorsCarryStableCodes) {
  StartServer(1);
  Client client = Connect();

  ASSERT_TRUE(client.Send(ParseParams(R"({"op":"dance","req":1})")).ok());
  auto e1 = client.NextFrame(10);
  ASSERT_TRUE(e1.ok()) << e1.error();
  EXPECT_EQ(e1.value()["type"].as_string(), "error");
  EXPECT_EQ(e1.value()["code"].as_string(), "unknown_op");

  ASSERT_TRUE(client.Send(ParseParams(R"({"op":"status","job":777,"req":2})")).ok());
  auto e2 = client.NextFrame(10);
  ASSERT_TRUE(e2.ok()) << e2.error();
  EXPECT_EQ(e2.value()["code"].as_string(), "unknown_job");

  // Submit with a bad parameter: rejected at parse time, nothing scheduled.
  ASSERT_TRUE(client
                  .Send(ParseParams(
                      R"({"op":"submit","kind":"check","req":3,)"
                      R"("params":{"max_statez":10}})"))
                  .ok());
  auto e3 = client.NextFrame(10);
  ASSERT_TRUE(e3.ok()) << e3.error();
  EXPECT_EQ(e3.value()["type"].as_string(), "error");
  EXPECT_EQ(e3.value()["code"].as_string(), "bad_request");
  EXPECT_EQ(server_->scheduler().Stats().submitted, 0u);

  // Shutdown is forbidden unless the daemon opts in.
  ASSERT_TRUE(client.Send(ParseParams(R"({"op":"shutdown","req":4})")).ok());
  auto e4 = client.NextFrame(10);
  ASSERT_TRUE(e4.ok()) << e4.error();
  EXPECT_EQ(e4.value()["code"].as_string(), "forbidden");
}

// A job that asks for an absurd thread count must not get it: the server
// clamps "workers" to its cap before the job reaches ParallelBfsCheck. If
// the clamp regressed, this submit would attempt a million threads.
TEST_F(ServeE2E, WorkersClampedToServerCap) {
  StartServer(/*workers=*/1, /*max_queued=*/64, /*max_workers_cap=*/2);
  Client client = Connect();
  auto job = client.Submit(
      "check", ParseParams(R"({"system":"pysyncobj","workers":1000000,)"
                           R"("max_states":200})"));
  ASSERT_TRUE(job.ok()) << job.error();
  auto result = client.WaitResult(job.value(), 30);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value()["status"].as_string(), "done");
}

// A job connection streaming bytes with no newline must be cut off at the
// line cap instead of growing server memory without bound.
TEST_F(ServeE2E, OversizedRequestLineIsRejected) {
  StartServer(1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, sock_.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // Don't hang the suite if the server (wrongly) neither errors nor closes.
  timeval tv{10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  // 5 MiB, no '\n'. The server closes mid-stream, so write errors (EPIPE /
  // ECONNRESET) are expected and end the pump.
  const std::string chunk(64 * 1024, 'x');
  for (int i = 0; i < 80; ++i) {
    size_t off = 0;
    while (off < chunk.size()) {
      const ssize_t n =
          ::send(fd, chunk.data() + off, chunk.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        break;
      }
      off += static_cast<size_t>(n);
    }
    if (off < chunk.size()) {
      break;
    }
  }

  std::string got;  // hello frame, then the oversized-line error, then EOF
  char buf[4096];
  for (ssize_t n = ::read(fd, buf, sizeof(buf)); n > 0;
       n = ::read(fd, buf, sizeof(buf))) {
    got.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(got.find("\"bad_request\""), std::string::npos) << got;
  EXPECT_NE(got.find("request line exceeds"), std::string::npos) << got;
}

// The acceptance-criterion test: four concurrent jobs (two BFS checks, two
// random-walk simulations) submitted over one connection, frames
// demultiplexed by job id, each job streaming progress, every result
// identical to a direct in-process engine run of the same validated params,
// and GET /metrics showing jobs running while they run and the final counts
// after.
TEST_F(ServeE2E, ConcurrentJobsMatchDirectExecutionAndMetrics) {
  StartServer(4);
  Client client = Connect();

  const std::vector<std::pair<std::string, std::string>> jobs = {
      {"check",
       R"({"system":"pysyncobj","max_states":30000,"progress_every":4000})"},
      {"check",
       R"({"system":"pysyncobj","max_states":8000,"progress_every":1000})"},
      {"simulate",
       R"({"system":"pysyncobj","traces":300,"seed":7,"walk_depth":50,)"
       R"("progress_every":50})"},
      {"simulate",
       R"({"system":"pysyncobj","traces":150,"seed":11,"walk_depth":40,)"
       R"("check_invariants":true,"progress_every":25})"},
  };

  // Submit everything up front so the four jobs genuinely run concurrently.
  std::map<uint64_t, size_t> job_to_index;
  for (size_t i = 0; i < jobs.size(); ++i) {
    JsonObject req;
    req["op"] = Json("submit");
    req["kind"] = Json(jobs[i].first);
    req["req"] = Json(static_cast<int64_t>(i));
    req["params"] = ParseParams(jobs[i].second);
    ASSERT_TRUE(client.Send(Json(std::move(req))).ok());
  }

  // While they run, the metrics listener must report running jobs. Poll: the
  // smallest job takes a noticeable fraction of a second, so some scrape
  // observes running >= 1 well before everything drains.
  bool saw_running = false;
  const auto deadline = Clock::now() + std::chrono::seconds(30);
  while (Clock::now() < deadline) {
    const double running =
        PromValue(Scrape(), "sandtable_scheduler_jobs_running");
    if (running >= 1) {
      saw_running = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(saw_running) << "no scrape observed a running job";

  // Drain the interleaved frame stream until all four results arrive.
  std::map<uint64_t, Json> results;
  std::map<uint64_t, size_t> started;
  std::map<uint64_t, size_t> progress;
  size_t acks = 0;
  while (results.size() < jobs.size()) {
    auto frame = client.NextFrame(120);
    ASSERT_TRUE(frame.ok()) << frame.error();
    const Json& f = frame.value();
    const std::string type = f["type"].as_string();
    if (type == "ack") {
      ASSERT_TRUE(f["req"].is_int());
      ASSERT_TRUE(f["job"].is_int());
      job_to_index[static_cast<uint64_t>(f["job"].as_int())] =
          static_cast<size_t>(f["req"].as_int());
      ++acks;
    } else if (type == "started") {
      ++started[static_cast<uint64_t>(f["job"].as_int())];
    } else if (type == "progress" || type == "log") {
      ++progress[static_cast<uint64_t>(f["job"].as_int())];
    } else if (type == "result") {
      results[static_cast<uint64_t>(f["job"].as_int())] = f;
    } else {
      FAIL() << "unexpected frame: " << f.Dump();
    }
  }
  EXPECT_EQ(acks, jobs.size());
  ASSERT_EQ(job_to_index.size(), jobs.size());

  for (const auto& [job_id, frame] : results) {
    ASSERT_TRUE(job_to_index.count(job_id));
    const size_t idx = job_to_index[job_id];
    EXPECT_EQ(frame["status"].as_string(), "done") << frame.Dump();
    EXPECT_EQ(started[job_id], 1u);
    EXPECT_GE(progress[job_id], 1u) << "job " << idx << " streamed no progress";

    // The daemon's result document must match a direct engine run of the
    // identically-parsed params, timing keys aside.
    auto params = ParseJobParams(jobs[idx].first, ParseParams(jobs[idx].second));
    ASSERT_TRUE(params.ok()) << params.error();
    StopToken stop;
    JobOutcome direct =
        ExecuteJob(params.value(), [](Json) {}, stop, nullptr);
    EXPECT_EQ(direct.status, "done");
    EXPECT_EQ(StripVolatile(frame["result"]).Dump(),
              StripVolatile(direct.result).Dump())
        << "job " << idx << " diverged from the direct engine run";
  }

  // After the drain the scrape reflects the totals.
  ASSERT_TRUE(server_->scheduler().WaitIdle(30));
  const std::string body = Scrape();
  EXPECT_EQ(PromValue(body, "sandtable_scheduler_jobs_running"), 0);
  EXPECT_EQ(PromValue(body, "sandtable_scheduler_jobs_queued"), 0);
  EXPECT_GE(PromValue(body, "sandtable_scheduler_jobs_submitted_total"), 4);
  EXPECT_GE(PromValue(body, "sandtable_scheduler_jobs_completed_total"), 4);
  // Engine counters from the jobs aggregated into the daemon registry.
  EXPECT_GT(PromValue(body, "sandtable_states_distinct"), 0);
}

TEST_F(ServeE2E, CancelRunningJobOverTheWire) {
  StartServer(1);
  Client client = Connect();

  // Effectively-unbounded walk count: only cancellation ends this job.
  auto submitted = client.Submit(
      "simulate",
      ParseParams(R"({"traces":1000000000,"walk_depth":50,"progress_every":500})"));
  ASSERT_TRUE(submitted.ok()) << submitted.error();
  const uint64_t job = submitted.value();

  // Wait until it is running, then scrape: running >= 1.
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (Clock::now() < deadline) {
    auto record = server_->scheduler().Status(job);
    if (record.has_value() && record->state == JobState::kRunning) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(PromValue(Scrape(), "sandtable_scheduler_jobs_running"), 1);

  JsonObject cancel;
  cancel["op"] = Json("cancel");
  cancel["job"] = Json(job);
  cancel["req"] = Json(static_cast<int64_t>(99));
  ASSERT_TRUE(client.Send(Json(std::move(cancel))).ok());

  auto result = client.WaitResult(job, 30);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value()["status"].as_string(), "cancelled");
  EXPECT_TRUE(result.value()["result"]["cancelled"].as_bool())
      << result.value().Dump();

  // The slot is free again: a small job completes after the cancel.
  auto next = client.Submit("simulate", ParseParams(R"({"traces":3})"));
  ASSERT_TRUE(next.ok()) << next.error();
  auto next_result = client.WaitResult(next.value(), 30);
  ASSERT_TRUE(next_result.ok()) << next_result.error();
  EXPECT_EQ(next_result.value()["status"].as_string(), "done");
  EXPECT_EQ(server_->scheduler().Stats().cancelled, 1u);
}

TEST_F(ServeE2E, DisconnectCancelsImplicitTenantJobs) {
  StartServer(1);
  {
    Client client = Connect();
    auto submitted = client.Submit(
        "simulate", ParseParams(R"({"traces":1000000000,"walk_depth":50})"));
    ASSERT_TRUE(submitted.ok()) << submitted.error();
    const auto deadline = Clock::now() + std::chrono::seconds(10);
    while (Clock::now() < deadline) {
      auto record = server_->scheduler().Status(submitted.value());
      if (record.has_value() && record->state == JobState::kRunning) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    client.Close();
  }
  // The dropped connection's job is cancelled and the worker frees without
  // any explicit cancel op.
  const auto deadline = Clock::now() + std::chrono::seconds(30);
  while (Clock::now() < deadline) {
    const SchedulerStats stats = server_->scheduler().Stats();
    if (stats.cancelled >= 1 && stats.running == 0) {
      SUCCEED();
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "disconnect did not cancel the connection's job: "
         << server_->scheduler().Stats().ToJson().Dump();
}

TEST_F(ServeE2E, ExplicitTenantJobSurvivesDisconnect) {
  StartServer(1);
  uint64_t job = 0;
  {
    Client client = Connect();
    auto submitted = client.Submit(
        "simulate", ParseParams(R"({"traces":1000000000,"walk_depth":50})"),
        "ci");
    ASSERT_TRUE(submitted.ok()) << submitted.error();
    job = submitted.value();
    client.Close();
  }
  // Still alive after the submitting connection went away...
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto record = server_->scheduler().Status(job);
  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(record->state == JobState::kRunning ||
              record->state == JobState::kQueued);
  // ...until someone cancels it by id from a fresh connection.
  EXPECT_TRUE(server_->scheduler().Cancel(job));
  ASSERT_TRUE(server_->scheduler().WaitIdle(30));
}

TEST_F(ServeE2E, QueueFullRejectionOverTheWire) {
  StartServer(1, /*max_queued=*/1);
  Client client = Connect();

  auto running = client.Submit(
      "simulate", ParseParams(R"({"traces":1000000000,"walk_depth":50})"));
  ASSERT_TRUE(running.ok()) << running.error();
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (Clock::now() < deadline) {
    auto record = server_->scheduler().Status(running.value());
    if (record.has_value() && record->state == JobState::kRunning) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  auto queued = client.Submit("simulate", ParseParams(R"({"traces":3})"));
  ASSERT_TRUE(queued.ok()) << queued.error();

  // Third submit: the single queue slot is taken.
  ASSERT_TRUE(client
                  .Send(ParseParams(
                      R"({"op":"submit","kind":"simulate","req":42,)"
                      R"("params":{"traces":3}})"))
                  .ok());
  for (;;) {
    auto frame = client.NextFrame(30);
    ASSERT_TRUE(frame.ok()) << frame.error();
    if (frame.value()["req"].is_int() && frame.value()["req"].as_int() == 42) {
      EXPECT_EQ(frame.value()["type"].as_string(), "error");
      EXPECT_EQ(frame.value()["code"].as_string(), "queue_full");
      break;
    }
  }
  EXPECT_GE(server_->scheduler().Stats().rejected, 1u);
  server_->scheduler().Cancel(running.value());
  ASSERT_TRUE(server_->scheduler().WaitIdle(30));
}

}  // namespace
}  // namespace serve
}  // namespace sandtable
