#include <gtest/gtest.h>

#include "src/spec/spec.h"

namespace sandtable {
namespace {

TEST(Spec, EventKindNames) {
  EXPECT_STREQ(EventKindName(EventKind::kMessage), "Message");
  EXPECT_STREQ(EventKindName(EventKind::kTimeout), "Timeout");
  EXPECT_STREQ(EventKindName(EventKind::kInternal), "Internal");
}

TEST(Spec, ActionLabelToString) {
  ActionLabel l;
  l.action = "Deliver";
  JsonObject o;
  o["src"] = Json(1);
  l.params = Json(std::move(o));
  EXPECT_EQ(l.ToString(), "Deliver {\"src\":1}");
  l.params = Json(JsonObject{});
  EXPECT_EQ(l.ToString(), "Deliver");
}

TEST(Spec, WithinConstraintDefaultsTrue) {
  Spec spec;
  EXPECT_TRUE(spec.WithinConstraint(Value::Int(0)));
  spec.constraint = [](const State& s) { return s.int_v() < 3; };
  EXPECT_TRUE(spec.WithinConstraint(Value::Int(2)));
  EXPECT_FALSE(spec.WithinConstraint(Value::Int(3)));
}

std::vector<TraceStep> MakeTrace() {
  std::vector<TraceStep> trace;
  trace.push_back(TraceStep{ActionLabel{}, Value::Record({{"x", Value::Int(0)}})});
  TraceStep step;
  step.label.action = "Inc";
  step.label.kind = EventKind::kClientRequest;
  JsonObject params;
  params["node"] = Json(1);
  step.label.params = Json(std::move(params));
  step.state = Value::Record({{"x", Value::Int(1)}});
  trace.push_back(std::move(step));
  return trace;
}

TEST(Spec, TraceJsonlRoundTrip) {
  const auto trace = MakeTrace();
  const std::string text = TraceToJsonl(trace);
  // Two lines, one per step.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  auto back = TraceFromJsonl(text);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_EQ(back.value()[1].label.action, "Inc");
  EXPECT_EQ(back.value()[1].label.kind, EventKind::kClientRequest);
  EXPECT_EQ(back.value()[1].label.params["node"].as_int(), 1);
  EXPECT_EQ(back.value()[1].state, trace[1].state);
}

TEST(Spec, TraceFromJsonlRejectsGarbage) {
  EXPECT_FALSE(TraceFromJsonl("not json\n").ok());
  EXPECT_FALSE(TraceFromJsonl("[1,2]\n").ok());
}

TEST(Spec, TraceFromJsonlSkipsBlankLines) {
  const auto trace = MakeTrace();
  auto back = TraceFromJsonl("\n" + TraceToJsonl(trace) + "\n\n");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), 2u);
}

TEST(Spec, TraceToStringShowsInitAndSteps) {
  const std::string text = TraceToString(MakeTrace());
  EXPECT_NE(text.find("0: <init>"), std::string::npos);
  EXPECT_NE(text.find("1: Inc"), std::string::npos);
}

}  // namespace
}  // namespace sandtable
