#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/net/specnet.h"
#include "src/util/rng.h"

namespace sandtable {
namespace {

Value N(int i) { return Value::Model("n", i); }

Value Msg(int src, int dst, int id) {
  return Value::Record({{"src", N(src)}, {"dst", N(dst)}, {"id", Value::Int(id)},
                        {"mtype", Value::Str("M")}});
}

TEST(SpecNetTcp, FifoDelivery) {
  Value net = specnet::InitTcp();
  const Value none = Value::EmptySet();
  net = specnet::Send(net, Msg(0, 1, 1), none);
  net = specnet::Send(net, Msg(0, 1, 2), none);
  auto ds = specnet::Deliveries(net, none);
  ASSERT_EQ(ds.size(), 1u);  // only the head of the single channel
  EXPECT_EQ(ds[0].msg.field("id").int_v(), 1);
  auto ds2 = specnet::Deliveries(ds[0].net_after, none);
  ASSERT_EQ(ds2.size(), 1u);
  EXPECT_EQ(ds2[0].msg.field("id").int_v(), 2);
  EXPECT_TRUE(specnet::Deliveries(ds2[0].net_after, none).empty());
}

TEST(SpecNetTcp, IndependentChannels) {
  Value net = specnet::InitTcp();
  const Value none = Value::EmptySet();
  net = specnet::Send(net, Msg(0, 1, 1), none);
  net = specnet::Send(net, Msg(2, 1, 2), none);
  EXPECT_EQ(specnet::Deliveries(net, none).size(), 2u);
  EXPECT_EQ(specnet::TotalInFlight(net), 2);
  EXPECT_EQ(specnet::MaxChannelLoad(net), 1);
}

TEST(SpecNetTcp, PartitionDelaysCrossingQueuesAndBlocksSends) {
  Value net = specnet::InitTcp();
  const Value none = Value::EmptySet();
  net = specnet::Send(net, Msg(0, 1, 1), none);  // crosses the future cut
  net = specnet::Send(net, Msg(1, 2, 2), none);  // stays within one side
  const Value side = Value::Set({N(0)});
  net = specnet::Partition(net, side);
  EXPECT_TRUE(specnet::HasPartition(net));
  EXPECT_FALSE(specnet::ConnectedPair(net, N(0), N(1)));
  EXPECT_TRUE(specnet::ConnectedPair(net, N(1), N(2)));
  // The crossing message moved to the old-connection buffer: not deliverable
  // while the cut holds, but not lost either.
  auto ds = specnet::Deliveries(net, none);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].msg.field("id").int_v(), 2);
  EXPECT_EQ(specnet::TotalInFlight(net), 2);
  // New sends across the cut fail (the connection is down).
  const Value before = net;
  net = specnet::Send(net, Msg(0, 2, 3), none);
  EXPECT_EQ(net, before);
  // Healing restores connectivity and the delayed message surfaces.
  net = specnet::Heal(net);
  EXPECT_TRUE(specnet::ConnectedPair(net, N(0), N(1)));
  ds = specnet::Deliveries(net, none);
  ASSERT_EQ(ds.size(), 2u);
}

TEST(SpecNetTcp, DelayedTrafficInterleavesWithNewTraffic) {
  Value net = specnet::InitTcp();
  const Value none = Value::EmptySet();
  net = specnet::Send(net, Msg(0, 1, 1), none);
  net = specnet::Partition(net, Value::Set({N(0)}));
  net = specnet::Heal(net);
  net = specnet::Send(net, Msg(0, 1, 2), none);  // new-connection traffic
  // Both stream heads are deliverable — the reordering behind Figure 6.
  auto ds = specnet::Deliveries(net, none);
  ASSERT_EQ(ds.size(), 2u);
  // Delivering the new message first leaves the delayed one available.
  for (const auto& d : ds) {
    if (d.msg.field("id").int_v() == 2) {
      auto rest = specnet::Deliveries(d.net_after, none);
      ASSERT_EQ(rest.size(), 1u);
      EXPECT_EQ(rest[0].msg.field("id").int_v(), 1);
    }
  }
  // A crash clears delayed buffers too.
  net = specnet::OnCrash(net, N(1));
  EXPECT_EQ(specnet::TotalInFlight(net), 0);
}

TEST(SpecNetTcp, SendToCrashedNodeIsLost) {
  Value net = specnet::InitTcp();
  const Value crashed = Value::Set({N(1)});
  net = specnet::Send(net, Msg(0, 1, 1), crashed);
  EXPECT_EQ(specnet::TotalInFlight(net), 0);
}

TEST(SpecNetTcp, CrashClearsChannelsOfNode) {
  Value net = specnet::InitTcp();
  const Value none = Value::EmptySet();
  net = specnet::Send(net, Msg(0, 1, 1), none);
  net = specnet::Send(net, Msg(1, 2, 2), none);
  net = specnet::Send(net, Msg(2, 0, 3), none);
  net = specnet::OnCrash(net, N(1));
  // Both the 0->1 and 1->2 channels vanish; 2->0 survives.
  auto ds = specnet::Deliveries(net, Value::Set({N(1)}));
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].msg.field("id").int_v(), 3);
}

TEST(SpecNetUdp, OutOfOrderDelivery) {
  Value net = specnet::InitUdp();
  const Value none = Value::EmptySet();
  net = specnet::Send(net, Msg(0, 1, 1), none);
  net = specnet::Send(net, Msg(0, 1, 2), none);
  // Both messages are individually deliverable (reordering).
  EXPECT_EQ(specnet::Deliveries(net, none).size(), 2u);
}

TEST(SpecNetUdp, DuplicateSendsCoalesceWithCount) {
  Value net = specnet::InitUdp();
  const Value none = Value::EmptySet();
  net = specnet::Send(net, Msg(0, 1, 1), none);
  net = specnet::Send(net, Msg(0, 1, 1), none);
  EXPECT_EQ(specnet::TotalInFlight(net), 2);
  auto ds = specnet::Deliveries(net, none);
  ASSERT_EQ(ds.size(), 1u);  // one distinct message
  // After one delivery, a copy remains.
  EXPECT_EQ(specnet::TotalInFlight(ds[0].net_after), 1);
}

TEST(SpecNetUdp, DropAndDuplicateFaults) {
  Value net = specnet::InitUdp();
  const Value none = Value::EmptySet();
  net = specnet::Send(net, Msg(0, 1, 1), none);
  auto drops = specnet::DropOptions(net);
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(specnet::TotalInFlight(drops[0].net_after), 0);

  auto dups = specnet::DupOptions(net, 2);
  ASSERT_EQ(dups.size(), 1u);
  EXPECT_EQ(specnet::TotalInFlight(dups[0].net_after), 2);
  // max_copies bounds duplication.
  EXPECT_TRUE(specnet::DupOptions(dups[0].net_after, 2).empty());
}

TEST(SpecNetUdp, NoFaultOptionsOnTcp) {
  Value net = specnet::InitTcp();
  net = specnet::Send(net, Msg(0, 1, 1), Value::EmptySet());
  EXPECT_TRUE(specnet::DropOptions(net).empty());
  EXPECT_TRUE(specnet::DupOptions(net, 2).empty());
}

TEST(SpecNet, AllMessagesEnumerates) {
  Value net = specnet::InitTcp();
  const Value none = Value::EmptySet();
  net = specnet::Send(net, Msg(0, 1, 1), none);
  net = specnet::Send(net, Msg(0, 1, 2), none);
  net = specnet::Send(net, Msg(1, 0, 3), none);
  EXPECT_EQ(specnet::AllMessages(net).size(), 3u);
}

// --- Fault-option laws -------------------------------------------------------
//
// Property tests over randomized UDP message multisets. The fault model must
// obey two algebraic laws for the minimizer's domain passes to be sound:
// duplicating a datagram and then dropping the copy is the identity on the
// network value, and fault options only ever name messages actually in flight.

// Builds a UDP net with 1..max_sends sends between three nodes, with repeated
// (src, dst, id) triples likely so the multiset counts get exercised.
Value RandomUdpNet(Rng& rng, int max_sends) {
  Value net = specnet::InitUdp();
  const Value none = Value::EmptySet();
  const int sends = static_cast<int>(rng.Range(1, max_sends));
  for (int s = 0; s < sends; ++s) {
    const int src = static_cast<int>(rng.Range(0, 2));
    const int dst = (src + 1 + static_cast<int>(rng.Range(0, 1))) % 3;
    const int id = static_cast<int>(rng.Range(1, 3));
    net = specnet::Send(net, Msg(src, dst, id), none);
  }
  return net;
}

bool ContainsMessage(const std::vector<Value>& all, const Value& msg) {
  return std::find(all.begin(), all.end(), msg) != all.end();
}

TEST(SpecNetUdpLaws, DropOfJustDuplicatedDatagramRestoresOriginalMultiset) {
  Rng rng(0xfa017);
  for (int trial = 0; trial < 50; ++trial) {
    const Value net = RandomUdpNet(rng, 8);
    for (const auto& dup : specnet::DupOptions(net, /*max_copies=*/8)) {
      EXPECT_EQ(specnet::TotalInFlight(dup.net_after),
                specnet::TotalInFlight(net) + 1);
      // Exactly one drop option targets the duplicated message; taking it must
      // return the exact original network value, not just the same count.
      bool found = false;
      for (const auto& drop : specnet::DropOptions(dup.net_after)) {
        if (drop.msg == dup.msg) {
          EXPECT_FALSE(found) << "two drop options for one distinct message";
          found = true;
          EXPECT_EQ(drop.net_after, net);
        }
      }
      EXPECT_TRUE(found) << "duplicated message has no drop option";
    }
  }
}

TEST(SpecNetUdpLaws, FaultOptionsNeverReferenceAbsentMessages) {
  Rng rng(0xab5e97);
  for (int trial = 0; trial < 50; ++trial) {
    const Value net = RandomUdpNet(rng, 8);
    const std::vector<Value> all = specnet::AllMessages(net);
    for (const auto& drop : specnet::DropOptions(net)) {
      EXPECT_TRUE(ContainsMessage(all, drop.msg));
      EXPECT_EQ(specnet::TotalInFlight(drop.net_after),
                specnet::TotalInFlight(net) - 1);
      // The dropped copy is gone, but the fault never invents new messages.
      for (const auto& survivor : specnet::AllMessages(drop.net_after)) {
        EXPECT_TRUE(ContainsMessage(all, survivor));
      }
    }
    for (const auto& dup : specnet::DupOptions(net, /*max_copies=*/8)) {
      EXPECT_TRUE(ContainsMessage(all, dup.msg));
      // Duplication adds a copy of an existing message — no new identities.
      for (const auto& m : specnet::AllMessages(dup.net_after)) {
        EXPECT_TRUE(ContainsMessage(all, m));
      }
    }
  }
}

TEST(SpecNetUdpLaws, EveryInFlightMessageHasExactlyOneDropOption) {
  Rng rng(0xd1ce);
  for (int trial = 0; trial < 50; ++trial) {
    const Value net = RandomUdpNet(rng, 8);
    const std::vector<Value> all = specnet::AllMessages(net);
    const auto drops = specnet::DropOptions(net);
    // One option per *distinct* message, regardless of its copy count.
    EXPECT_EQ(drops.size(), all.size());
    for (const Value& m : all) {
      const auto hits = std::count_if(
          drops.begin(), drops.end(),
          [&](const specnet::FaultOption& d) { return d.msg == m; });
      EXPECT_EQ(hits, 1);
    }
  }
}

TEST(SpecNetUdpLaws, NoFaultOptionsOnEmptyNet) {
  const Value net = specnet::InitUdp();
  EXPECT_TRUE(specnet::DropOptions(net).empty());
  EXPECT_TRUE(specnet::DupOptions(net, 4).empty());
}

TEST(SpecNet, EmptyChannelsKeepStateCanonical) {
  Value net = specnet::InitTcp();
  const Value none = Value::EmptySet();
  const Value fresh = net;
  net = specnet::Send(net, Msg(0, 1, 1), none);
  auto ds = specnet::Deliveries(net, none);
  ASSERT_EQ(ds.size(), 1u);
  // Delivering the only message returns to the pristine network value, so
  // fingerprints do not depend on historic traffic.
  EXPECT_EQ(ds[0].net_after, fresh);
}

}  // namespace
}  // namespace sandtable
