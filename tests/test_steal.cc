// Stress tests for the work-stealing scheduler (src/par/steal.h) and the
// hash-compacted visited set (src/store/compact_store.h). Label `par`: these
// are the TSan targets for the new concurrency — build with
// SANDTABLE_SANITIZE=thread and run `ctest --test-dir build-tsan -L par`.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "src/mc/bfs.h"
#include "src/par/parallel_bfs.h"
#include "src/par/steal.h"
#include "src/store/compact_store.h"
#include "src/util/rng.h"
#include "src/util/stop_token.h"
#include "tests/toy_specs.h"

namespace sandtable {
namespace {

// ---- Chase-Lev deque --------------------------------------------------------

// One owner pushing and popping at the bottom, several thieves hammering the
// top: every pushed element must be claimed exactly once, by whoever.
TEST(ChaseLevDeque, OwnerAndThievesClaimEachElementOnce) {
  constexpr int kThieves = 3;
  constexpr uint64_t kItems = 20000;

  par::ChaseLevDeque<uint64_t*> deque;
  std::vector<uint64_t> values(kItems);
  for (uint64_t i = 0; i < kItems; ++i) {
    values[i] = i + 1;
  }

  std::atomic<bool> done{false};
  std::vector<std::vector<uint64_t>> stolen(kThieves);
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      uint64_t* item = nullptr;
      while (!done.load(std::memory_order_acquire)) {
        if (deque.Steal(&item)) {
          stolen[static_cast<size_t>(t)].push_back(*item);
        } else {
          std::this_thread::yield();
        }
      }
      // Final sweep so nothing the owner left behind is unclaimed.
      while (deque.Steal(&item)) {
        stolen[static_cast<size_t>(t)].push_back(*item);
      }
    });
  }

  // Owner: push everything, popping a batch now and then so both ends of the
  // deque (and the one-element CAS race) are exercised.
  std::vector<uint64_t> popped;
  Rng rng(42);
  for (uint64_t i = 0; i < kItems; ++i) {
    deque.Push(&values[i]);
    if (rng.Below(4) == 0) {
      uint64_t* item = nullptr;
      while (deque.Pop(&item)) {
        popped.push_back(*item);
        if (rng.Below(2) == 0) {
          break;
        }
      }
    }
  }
  {
    uint64_t* item = nullptr;
    while (deque.Pop(&item)) {
      popped.push_back(*item);
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& th : thieves) {
    th.join();
  }

  std::multiset<uint64_t> claimed(popped.begin(), popped.end());
  for (const std::vector<uint64_t>& s : stolen) {
    claimed.insert(s.begin(), s.end());
  }
  ASSERT_EQ(claimed.size(), kItems) << "lost or duplicated elements";
  uint64_t expect = 1;
  for (uint64_t v : claimed) {
    ASSERT_EQ(v, expect++) << "element claimed twice or never";
  }
}

// Regression for the lost-race Pop bug: the engine's run_epoch leaves its
// chunk pointer null, calls Pop, and treats "still null" as "no work
// claimed". Pop used to write the element into *out BEFORE the last-element
// CAS and return false when a thief won — leaving the caller holding a
// pointer the thief now owns (double expansion / double free / pending
// underflow in the engine). The race hook fires inside the owner's window
// (top read, claiming CAS not yet issued) and claims the element exactly as
// a concurrent thief would, so the lost race is forced deterministically
// even on a single-core machine.
TEST(ChaseLevDeque, FailedPopLeavesOutParamUntouched) {
  par::ChaseLevDeque<uint64_t*> deque;
  deque.SetLastElementRaceHookForTest([](par::ChaseLevDeque<uint64_t*>* d) {
    EXPECT_TRUE(d->StealTopForTest());  // the thief's CAS wins the element
  });
  uint64_t value = 42;
  deque.Push(&value);

  // Engine-style caller: null pointer means "no chunk claimed".
  uint64_t* item = nullptr;
  EXPECT_FALSE(deque.Pop(&item));
  EXPECT_EQ(item, nullptr) << "lost-race Pop leaked the element the thief owns";
  EXPECT_TRUE(deque.EmptyApprox());
  // The deque stays coherent after the lost race: further pops find nothing.
  EXPECT_FALSE(deque.Pop(&item));
  EXPECT_EQ(item, nullptr);

  // With the hook removed the same sequence hands the element to the owner.
  deque.SetLastElementRaceHookForTest(nullptr);
  deque.Push(&value);
  ASSERT_TRUE(deque.Pop(&item));
  EXPECT_EQ(item, &value);
}

// The same contract under real concurrency (effective on multi-core / TSan
// runs): push-one, pop-one against a spinning thief keeps every Pop on the
// one-element CAS-race path; *out must stay untouched on every failed Pop
// and each element must still be claimed exactly once.
TEST(ChaseLevDeque, FailedPopStressKeepsOutParamClean) {
  constexpr uint64_t kRounds = 100000;
  par::ChaseLevDeque<uint64_t*> deque;
  std::vector<uint64_t> values(kRounds);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> stolen_count{0};
  std::thread thief([&] {
    uint64_t* item = nullptr;
    while (!done.load(std::memory_order_acquire)) {
      if (deque.Steal(&item)) {
        stolen_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
    while (deque.Steal(&item)) {
      stolen_count.fetch_add(1, std::memory_order_relaxed);
    }
  });

  uint64_t popped = 0;
  uint64_t dirty_failed_pops = 0;
  for (uint64_t i = 0; i < kRounds; ++i) {
    values[i] = i + 1;
    deque.Push(&values[i]);
    uint64_t* item = nullptr;  // engine-style: null means "nothing claimed"
    if (deque.Pop(&item)) {
      ++popped;
    } else if (item != nullptr) {
      ++dirty_failed_pops;  // the bug: a lost race leaked the element
    }
  }
  done.store(true, std::memory_order_release);
  thief.join();

  EXPECT_EQ(dirty_failed_pops, 0u)
      << "failed Pop wrote the stolen element into *out";
  EXPECT_EQ(popped + stolen_count.load(), kRounds)
      << "element claimed twice or never";
}

// Growth under active stealing: start from the tiny initial array so Grow()
// runs many times while thieves hold stale top cursors.
TEST(ChaseLevDeque, GrowsUnderConcurrentStealing) {
  constexpr uint64_t kItems = 4096;
  par::ChaseLevDeque<uint64_t*> deque;
  std::vector<uint64_t> values(kItems);
  for (uint64_t i = 0; i < kItems; ++i) {
    values[i] = i + 1;
  }

  std::atomic<uint64_t> stolen_count{0};
  std::atomic<bool> done{false};
  std::thread thief([&] {
    uint64_t* item = nullptr;
    while (!done.load(std::memory_order_acquire)) {
      if (deque.Steal(&item)) {
        stolen_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
    while (deque.Steal(&item)) {
      stolen_count.fetch_add(1, std::memory_order_relaxed);
    }
  });

  uint64_t popped = 0;
  for (uint64_t i = 0; i < kItems; ++i) {
    deque.Push(&values[i]);
  }
  {
    uint64_t* item = nullptr;
    while (deque.Pop(&item)) {
      ++popped;
    }
  }
  done.store(true, std::memory_order_release);
  thief.join();
  EXPECT_EQ(popped + stolen_count.load(), kItems);
}

TEST(ChaseLevDeque, QuiescentDrainVisitsRemainder) {
  par::ChaseLevDeque<int*> deque;
  int values[5] = {10, 11, 12, 13, 14};
  for (int& v : values) {
    deque.Push(&v);
  }
  int* popped = nullptr;
  ASSERT_TRUE(deque.Pop(&popped));
  EXPECT_EQ(*popped, 14);

  std::vector<int> seen;
  deque.ForEachQuiescent([&](int* v) { seen.push_back(*v); });
  EXPECT_EQ(seen, (std::vector<int>{10, 11, 12, 13}));

  seen.clear();
  deque.DrainQuiescent([&](int* v) { seen.push_back(*v); });
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(deque.EmptyApprox());
}

// ---- Work-stealing engine ---------------------------------------------------

TEST(WorkStealing, MatchesSerialWithSingleItemChunks) {
  // chunk_size 1 maximizes chunk count and steal contention.
  const Spec spec = toys::TokenRing(3, 2);
  const BfsResult serial = BfsCheck(spec);
  ParBfsOptions opts;
  opts.workers = 4;
  opts.chunk_size = 1;
  opts.steal = true;
  const BfsResult steal = ParallelBfsCheck(spec, opts);
  EXPECT_EQ(steal.distinct_states, serial.distinct_states);
  EXPECT_EQ(steal.depth_reached, serial.depth_reached);
  EXPECT_EQ(steal.exhausted, serial.exhausted);
  EXPECT_EQ(steal.deadlock_states, serial.deadlock_states);
}

TEST(WorkStealing, FindsMinimalDepthViolationUnderContention) {
  const Spec spec = toys::DieHard();
  for (int workers : {2, 4}) {
    ParBfsOptions opts;
    opts.workers = workers;
    opts.chunk_size = 1;
    opts.steal = true;
    const BfsResult r = ParallelBfsCheck(spec, opts);
    ASSERT_TRUE(r.violation.has_value()) << workers << " workers";
    EXPECT_EQ(r.violation->depth, 6u) << workers << " workers";
    EXPECT_EQ(r.violation->invariant, "BigNotFour") << workers << " workers";
  }
}

// Cancel mid-steal: a pre-raised token must come back cancelled with no work
// done beyond the seeds, and a token raised from another thread while workers
// are actively stealing must stop the engine in a consistent state.
TEST(WorkStealing, CancelMidStealViaStopToken) {
  {
    StopToken stop;
    stop.RequestStop();
    ParBfsOptions opts;
    opts.workers = 4;
    opts.chunk_size = 1;
    opts.steal = true;
    opts.base.stop = &stop;
    const BfsResult r = ParallelBfsCheck(toys::TokenRing(4, 3), opts);
    EXPECT_TRUE(r.cancelled);
    EXPECT_FALSE(r.exhausted);
    EXPECT_FALSE(r.violation.has_value());
  }
  {
    StopToken stop;
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      stop.RequestStop();
    });
    ParBfsOptions opts;
    opts.workers = 4;
    opts.chunk_size = 1;
    opts.steal = true;
    opts.base.stop = &stop;
    // Big enough space that cancellation usually lands mid-exploration.
    const BfsResult r = ParallelBfsCheck(toys::TokenRing(5, 4), opts);
    canceller.join();
    // Either the cancel landed mid-run or the space finished first — both
    // must be internally consistent.
    if (r.cancelled) {
      EXPECT_FALSE(r.exhausted);
    } else {
      EXPECT_TRUE(r.exhausted);
    }
    EXPECT_FALSE(r.hit_state_limit);
    EXPECT_FALSE(r.hit_time_limit);
  }
}

// ---- Hash-compacted store ---------------------------------------------------

TEST(CompactStore, ConcurrentInsertStress) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  store::CompactStateStore::Config cfg;
  cfg.reserve = 64;  // force many grows under contention
  cfg.shard_count_log2 = 2;
  store::CompactStateStore store(cfg);

  std::atomic<uint64_t> inserted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      uint64_t mine = 0;
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // Half the keyspace is shared across threads, so duplicate inserts
        // race; include fp == 0 to cover the zero-sentinel path.
        const uint64_t fp = rng.Below(2) == 0 ? rng.Below(1000) : rng.Next();
        if (store.InsertIfAbsent(fp, fp ^ 0xabcd)) {
          ++mine;
        }
      }
      inserted.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(store.Size(), inserted.load());
  EXPECT_FALSE(store.RetainsParents());
  EXPECT_EQ(store.Parent(1234), std::nullopt);
  store.InsertIfAbsent(0, 0);  // zero-sentinel path: must be queryable
  EXPECT_TRUE(store.Contains(0));
  EXPECT_FALSE(store.InsertIfAbsent(0, 0));
  EXPECT_GT(store.CollisionProbability(), 0.0);
  EXPECT_LT(store.CollisionProbability(), 1e-6);
  // Spot-check membership: re-running a thread's sequence only finds dups.
  Rng rng(1);
  for (uint64_t i = 0; i < 1000; ++i) {
    const uint64_t fp = rng.Below(2) == 0 ? rng.Below(1000) : rng.Next();
    EXPECT_TRUE(store.Contains(fp)) << fp;
  }
}

// The engine under simultaneous steal + compaction is the TSan money shot:
// deque CASes, shard mutexes and the counters all racing on a real space.
TEST(CompactStore, StealEngineWithCompactedStoreUnderStress) {
  const Spec spec = toys::TokenRing(4, 3);
  const BfsResult serial = BfsCheck(spec);

  store::CompactStateStore::Config cfg;
  cfg.reserve = 16;
  cfg.shard_count_log2 = 2;
  store::CompactStateStore store(cfg);
  ParBfsOptions opts;
  opts.workers = 4;
  opts.chunk_size = 1;
  opts.steal = true;
  opts.base.ooc.state_store = &store;
  const BfsResult r = ParallelBfsCheck(spec, opts);
  EXPECT_EQ(r.distinct_states, serial.distinct_states);
  EXPECT_EQ(r.depth_reached, serial.depth_reached);
  EXPECT_TRUE(r.exhausted);
  EXPECT_TRUE(r.hash_compact);
  EXPECT_GT(r.collision_probability, 0.0);
  EXPECT_EQ(store.Size(), serial.distinct_states);
}

}  // namespace
}  // namespace sandtable
