// Out-of-core store building blocks: the compact value codec (round trips
// preserve equality, hashes and therefore fingerprints), the two-tier spilling
// fingerprint store (equivalent to a reference map under forced spills and
// compaction), the disk-backed frontier spool (FIFO order survives spilling),
// and checkpoint manifest serialization.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/conformance/bug_catalog.h"
#include "src/mc/expand.h"
#include "src/minimize/corpus.h"
#include "src/store/checkpoint.h"
#include "src/store/frontier.h"
#include "src/store/state_store.h"
#include "src/util/rng.h"
#include "src/value/value_codec.h"
#include "tests/value_generators.h"

namespace sandtable {
namespace {

namespace fs = std::filesystem;
using store::FrontierEntry;
using store::FrontierSpool;
using store::SpoolConfig;

// Per-test scratch directory under the system temp dir, removed on success
// (kept on failure for post-mortem).
class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sandtable-store-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    if (!HasFailure()) {
      std::error_code ec;
      fs::remove_all(dir_, ec);
    }
  }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

// ---- Varints ---------------------------------------------------------------

TEST(ValueCodec, VarintRoundTripsEdgeValues) {
  const uint64_t cases[] = {0,       1,        127,        128,
                            16383,   16384,    (1ull << 32) - 1,
                            1ull << 32, ~0ull};
  for (uint64_t v : cases) {
    std::string buf;
    AppendVarint(buf, v);
    ByteReader r(buf);
    uint64_t back = 0;
    ASSERT_TRUE(r.ReadVarint(&back));
    EXPECT_EQ(back, v);
    EXPECT_TRUE(r.done());
  }
}

TEST(ValueCodec, ZigzagRoundTripsSignedValues) {
  const int64_t cases[] = {0, 1, -1, 63, -64, 64, -65, INT64_MAX, INT64_MIN};
  for (int64_t v : cases) {
    std::string buf;
    AppendZigzag(buf, v);
    ByteReader r(buf);
    int64_t back = 0;
    ASSERT_TRUE(r.ReadZigzag(&back));
    EXPECT_EQ(back, v);
  }
}

TEST(ValueCodec, TruncatedInputIsAnErrorNotACrash) {
  const Value v = Value::Record({{"xs", Value::Seq({Value::Int(1), Value::Str("hi")})}});
  const std::string block = EncodeValueBlock(v);
  for (size_t len = 0; len < block.size(); ++len) {
    auto r = DecodeValueBlock(std::string_view(block.data(), len));
    EXPECT_FALSE(r.ok()) << "prefix of length " << len << " decoded";
  }
  auto full = DecodeValueBlock(block);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value(), v);
}

// ---- Codec property tests --------------------------------------------------

TEST(ValueCodec, RandomValuesRoundTripWithIdenticalHash) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    for (int i = 0; i < 300; ++i) {
      const Value v = RandomValue(rng);
      auto back = DecodeValueBlock(EncodeValueBlock(v));
      ASSERT_TRUE(back.ok()) << v.ToString() << ": " << back.error();
      EXPECT_EQ(back.value(), v);
      EXPECT_EQ(back.value().hash(), v.hash()) << v.ToString();
    }
  }
}

TEST(ValueCodec, SharedEncoderDeduplicatesStrings) {
  // Many values sharing field names and strings: the shared table should make
  // the batch dramatically smaller than independent blocks.
  std::vector<Value> values;
  for (int i = 0; i < 64; ++i) {
    values.push_back(Value::Record({{"commonFieldName", Value::Str("Leader")},
                                    {"anotherFieldName", Value::Int(i)}}));
  }
  ValueEncoder enc;
  std::string batch_values;
  for (const Value& v : values) {
    enc.Encode(v, batch_values);
  }
  std::string batch;
  enc.WriteStringTable(batch);
  batch += batch_values;

  size_t independent = 0;
  for (const Value& v : values) {
    independent += EncodeValueBlock(v).size();
  }
  EXPECT_LT(batch.size(), independent / 2);
  EXPECT_EQ(enc.table_size(), 3u);  // two field names + "Leader"

  // And the batch decodes back.
  ByteReader r(batch);
  auto dec = ValueDecoder::FromStringTable(r);
  ASSERT_TRUE(dec.ok());
  for (const Value& v : values) {
    auto back = dec.value().Decode(r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
  }
  EXPECT_TRUE(r.done());
}

// Every state of every golden corpus trace round trips with an unchanged
// exploration fingerprint — the property out-of-core frontiers rest on.
TEST(ValueCodec, CorpusTraceStatesRoundTripWithIdenticalFingerprint) {
  const fs::path dir(SANDTABLE_CORPUS_DIR);
  ASSERT_TRUE(fs::exists(dir));
  int states_checked = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= 11 || name.substr(name.size() - 11) != ".trace.json") {
      continue;
    }
    auto golden = minimize::LoadGoldenTrace(entry.path().string());
    ASSERT_TRUE(golden.ok()) << name;
    const conformance::BugInfo& bug = conformance::FindBug(golden.value().bug);
    const Spec spec = conformance::MakeBugSpec(bug);
    const trace::SpecReplayResult r = minimize::ReplayGoldenTrace(spec, golden.value());
    ASSERT_FALSE(r.trace.empty()) << name;
    for (const TraceStep& step : r.trace) {
      auto back = DecodeValueBlock(EncodeValueBlock(step.state));
      ASSERT_TRUE(back.ok()) << name;
      EXPECT_EQ(back.value(), step.state);
      EXPECT_EQ(Fingerprint(spec, back.value(), /*use_symmetry=*/true),
                Fingerprint(spec, step.state, /*use_symmetry=*/true))
          << name;
      EXPECT_EQ(Fingerprint(spec, back.value(), /*use_symmetry=*/false),
                Fingerprint(spec, step.state, /*use_symmetry=*/false))
          << name;
      ++states_checked;
    }
  }
  EXPECT_GT(states_checked, 0);
}

// ---- Run files -------------------------------------------------------------

TEST_F(StoreTest, RunFileWriteAndProbe) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t i = 0; i < 100; ++i) {
    entries.emplace_back(i * 7 + 1, i);  // sorted by fp
  }
  const std::string path = Path("a.run");
  ASSERT_TRUE(store::WriteRunFile(path, entries).ok());

  auto run = store::MappedRun::Open(path);
  ASSERT_TRUE(run.ok()) << run.error();
  EXPECT_EQ(run.value()->count(), 100u);
  for (const auto& [fp, parent] : entries) {
    auto found = run.value()->Find(fp);
    ASSERT_TRUE(found.has_value()) << fp;
    EXPECT_EQ(*found, parent);
  }
  EXPECT_FALSE(run.value()->Find(0).has_value());
  EXPECT_FALSE(run.value()->Find(2).has_value());
  EXPECT_FALSE(run.value()->Find(~0ull).has_value());
}

TEST_F(StoreTest, CorruptRunFilesAreRejected) {
  EXPECT_FALSE(store::MappedRun::Open(Path("missing.run")).ok());

  {
    std::FILE* f = std::fopen(Path("bad-magic.run").c_str(), "wb");
    std::fwrite("NOTARUN0\0\0\0\0\0\0\0\0", 1, 16, f);
    std::fclose(f);
  }
  EXPECT_FALSE(store::MappedRun::Open(Path("bad-magic.run")).ok());

  {
    // Valid magic but the declared count does not match the file size.
    std::FILE* f = std::fopen(Path("short.run").c_str(), "wb");
    const char magic[8] = {'S', 'T', 'F', 'P', 'R', 'U', 'N', '1'};
    std::fwrite(magic, 1, 8, f);
    uint64_t count = 1000;
    std::fwrite(&count, 8, 1, f);
    std::fclose(f);
  }
  EXPECT_FALSE(store::MappedRun::Open(Path("short.run")).ok());

  {
    // Declared count chosen so count * 16 wraps around uint64: 2^60 + 1
    // entries "fit" a 32-byte file if the size check multiplies. Must be
    // rejected, not probed out of the mapping.
    std::FILE* f = std::fopen(Path("overflow.run").c_str(), "wb");
    const char magic[8] = {'S', 'T', 'F', 'P', 'R', 'U', 'N', '1'};
    std::fwrite(magic, 1, 8, f);
    const uint64_t count = (1ull << 60) + 1;
    std::fwrite(&count, 8, 1, f);
    const uint64_t entry[2] = {1, 1};
    std::fwrite(entry, 8, 2, f);
    std::fclose(f);
  }
  EXPECT_FALSE(store::MappedRun::Open(Path("overflow.run")).ok());
}

// ---- Spilling store equivalence -------------------------------------------

TEST_F(StoreTest, SpillingStoreMatchesReferenceMapUnderForcedSpills) {
  store::StoreConfig cfg;
  cfg.spill_dir = Path("spill");
  cfg.max_resident = 64;  // spill constantly
  cfg.max_runs = 3;       // compact repeatedly
  cfg.shard_count_log2 = 2;
  store::SpillingStateStore s(cfg);
  std::unordered_map<uint64_t, uint64_t> ref;

  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    // Small universe so duplicate inserts are common.
    const uint64_t fp = rng.Below(2000) + 1;
    const uint64_t parent = rng.Below(2000) + 1;
    const bool inserted = ref.emplace(fp, parent).second;
    EXPECT_EQ(s.InsertIfAbsent(fp, parent), inserted) << fp;
  }
  EXPECT_EQ(s.Size(), ref.size());
  EXPECT_GT(s.SpilledSize(), 0u);
  EXPECT_LE(s.RunCount(), cfg.max_runs);

  for (const auto& [fp, parent] : ref) {
    auto got = s.Parent(fp);
    ASSERT_TRUE(got.has_value()) << fp;
    EXPECT_EQ(*got, parent) << fp;
  }
  EXPECT_FALSE(s.Parent(0).has_value());
  EXPECT_FALSE(s.Parent(999999).has_value());

  // Flush pushes the remaining memory tier out; lookups still work.
  ASSERT_TRUE(s.Flush().ok());
  EXPECT_EQ(s.SpilledSize(), ref.size());
  for (const auto& [fp, parent] : ref) {
    ASSERT_EQ(s.Parent(fp).value_or(~0ull), parent);
  }
}

TEST_F(StoreTest, ConcurrentInsertsWithSpillsStayDisjointAcrossTiers) {
  // Stress the probe+insert vs. spill race: tiny resident budget so spills
  // happen constantly while several threads insert an overlapping universe.
  // A fingerprint that lands in both a disk run and the memory tier (the
  // TOCTOU the spill epoch closes) inflates Size() past the true distinct
  // count and double-counts successful inserts.
  store::StoreConfig cfg;
  cfg.spill_dir = Path("spill");
  cfg.max_resident = 32;
  cfg.max_runs = 3;
  cfg.shard_count_log2 = 2;
  store::SpillingStateStore s(cfg);

  constexpr uint64_t kUniverse = 3000;
  constexpr int kThreads = 4;
  std::atomic<uint64_t> inserted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&s, &inserted, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < 4000; ++i) {
        const uint64_t fp = rng.Below(kUniverse) + 1;
        if (s.InsertIfAbsent(fp, fp)) {
          inserted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  uint64_t distinct = 0;
  for (uint64_t fp = 1; fp <= kUniverse; ++fp) {
    if (s.Parent(fp).has_value()) {
      ++distinct;
    }
  }
  EXPECT_EQ(inserted.load(), distinct);
  EXPECT_EQ(s.Size(), distinct);
  // After a final flush the disk tier alone holds exactly the distinct set:
  // cumulative spilled == distinct only if no fp was ever spilled twice.
  ASSERT_TRUE(s.Flush().ok());
  EXPECT_EQ(s.SpilledSize(), distinct);
}

TEST_F(StoreTest, MemoryStoreAndSaveRunsRoundTrip) {
  store::MemoryStateStore mem(2);
  EXPECT_TRUE(mem.InsertIfAbsent(10, 10));
  EXPECT_TRUE(mem.InsertIfAbsent(20, 10));
  EXPECT_FALSE(mem.InsertIfAbsent(20, 99));
  EXPECT_EQ(mem.Size(), 2u);
  EXPECT_EQ(mem.Parent(20).value_or(0), 10u);
  EXPECT_EQ(mem.SpilledSize(), 0u);
  EXPECT_EQ(mem.RunCount(), 0u);

  auto files = mem.SaveRuns(Path("ckpt"));
  ASSERT_TRUE(files.ok()) << files.error();
  uint64_t total = 0;
  for (const std::string& name : files.value()) {
    auto run = store::MappedRun::Open(Path("ckpt") + "/" + name);
    ASSERT_TRUE(run.ok());
    total += run.value()->count();
  }
  EXPECT_EQ(total, 2u);
}

TEST_F(StoreTest, SpillingStoreAdoptsSavedRuns) {
  store::StoreConfig cfg;
  cfg.spill_dir = Path("spill");
  cfg.max_resident = 16;
  store::SpillingStateStore s(cfg);
  for (uint64_t fp = 1; fp <= 100; ++fp) {
    s.InsertIfAbsent(fp, fp / 2 + 1);
  }
  auto files = s.SaveRuns(Path("saved"));
  ASSERT_TRUE(files.ok()) << files.error();

  store::StoreConfig cfg2;
  cfg2.spill_dir = Path("spill2");
  store::SpillingStateStore s2(cfg2);
  std::vector<std::string> paths;
  for (const std::string& name : files.value()) {
    paths.push_back(Path("saved") + "/" + name);
  }
  ASSERT_TRUE(s2.LoadRuns(paths).ok());
  EXPECT_EQ(s2.Size(), 100u);
  for (uint64_t fp = 1; fp <= 100; ++fp) {
    EXPECT_FALSE(s2.InsertIfAbsent(fp, 0)) << fp;  // already known
    EXPECT_EQ(s2.Parent(fp).value_or(0), fp / 2 + 1);
  }
  EXPECT_EQ(s2.Size(), 100u);
}

TEST(MemBudget, SplitsWithFloors) {
  const store::MemBudget tiny = store::SplitMemBudget(0);
  EXPECT_GE(tiny.max_resident_fingerprints, 1024u);
  EXPECT_GE(tiny.max_resident_frontier, 256u);
  const store::MemBudget big = store::SplitMemBudget(1024);
  EXPECT_GT(big.max_resident_fingerprints, big.max_resident_frontier);
  EXPECT_GT(big.max_resident_fingerprints, 1u << 20);
}

// ---- Frontier spool --------------------------------------------------------

State TestState(uint64_t i) {
  return Value::Record({{"id", Value::Int(static_cast<int64_t>(i))},
                        {"tag", Value::Str(i % 2 == 0 ? "even" : "odd")}});
}

TEST_F(StoreTest, FrontierChunkRoundTrip) {
  std::vector<FrontierEntry> chunk;
  for (uint64_t i = 0; i < 50; ++i) {
    chunk.push_back({i * 3 + 7, TestState(i)});
  }
  auto back = store::DecodeFrontierChunk(store::EncodeFrontierChunk(chunk));
  ASSERT_TRUE(back.ok()) << back.error();
  ASSERT_EQ(back.value().size(), chunk.size());
  for (size_t i = 0; i < chunk.size(); ++i) {
    EXPECT_EQ(back.value()[i].fp, chunk[i].fp);
    EXPECT_EQ(back.value()[i].state, chunk[i].state);
  }
}

TEST_F(StoreTest, SpoolPreservesFifoOrderAcrossSpills) {
  SpoolConfig cfg;
  cfg.dir = Path("frontier");
  cfg.max_resident = 10;
  cfg.chunk_states = 4;  // several chunks plus a partial tail
  FrontierSpool spool(&cfg, "t.seg");

  const uint64_t n = 137;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(spool.Push(i + 1, TestState(i)).ok());
  }
  EXPECT_EQ(spool.size(), n);
  // spilled() counts entries written to the segment file: the overflow minus
  // whatever still sits in the open (< chunk_states) tail chunk.
  const uint64_t overflow = n - cfg.max_resident;
  EXPECT_EQ(spool.spilled(), overflow / cfg.chunk_states * cfg.chunk_states);

  auto reader = spool.Read();
  uint64_t fp = 0;
  State state;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(reader.Next(&fp, &state))
        << "entry " << i << ": "
        << (reader.status().ok() ? "exhausted" : reader.status().error());
    EXPECT_EQ(fp, i + 1);
    EXPECT_EQ(state, TestState(i));
  }
  EXPECT_FALSE(reader.Next(&fp, &state));
  EXPECT_TRUE(reader.status().ok());
}

TEST_F(StoreTest, SpoolWithNullConfigStaysInMemory) {
  FrontierSpool spool(nullptr, "unused.seg");
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(spool.Push(i, TestState(i)).ok());
  }
  EXPECT_EQ(spool.spilled(), 0u);
  auto reader = spool.Read();
  uint64_t fp = 0;
  State state;
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(reader.Next(&fp, &state));
    EXPECT_EQ(fp, i);
  }
}

TEST_F(StoreTest, SaveSegmentRoundTripsThroughForEach) {
  SpoolConfig cfg;
  cfg.dir = Path("frontier");
  cfg.max_resident = 8;
  cfg.chunk_states = 4;
  FrontierSpool spool(&cfg, "s.seg");
  const uint64_t n = 33;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(spool.Push(i + 1, TestState(i)).ok());
  }
  const std::string saved = Path("saved.seg");
  ASSERT_TRUE(spool.SaveSegment(saved).ok());

  uint64_t next = 0;
  Status st = store::ForEachSegmentEntry(saved, [&](uint64_t fp, State&& state) {
    EXPECT_EQ(fp, next + 1);
    EXPECT_EQ(state, TestState(next));
    ++next;
    return Status();
  });
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error());
  EXPECT_EQ(next, n);
}

TEST_F(StoreTest, SegmentWithHugeChunkLengthIsACleanError) {
  // A corrupt/truncated segment can declare any 64-bit chunk length; readers
  // must bound it against the file size and return Status, not allocate.
  const std::string path = Path("huge.seg");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    const char magic[8] = {'S', 'T', 'F', 'R', 'S', 'E', 'G', '1'};
    std::fwrite(magic, 1, 8, f);
    const uint64_t len = 1ull << 62;
    std::fwrite(&len, 8, 1, f);
    std::fwrite("abc", 1, 3, f);
    std::fclose(f);
  }
  const Status st = store::ForEachSegmentEntry(
      path, [](uint64_t, State&&) { return Status(); });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().find("truncated chunk"), std::string::npos) << st.error();
}

// ---- Checkpoint manifest ---------------------------------------------------

TEST(CheckpointMeta, JsonRoundTrip) {
  store::CheckpointMeta meta;
  meta.spec_name = "raft/pysyncobj";
  meta.spec_hash = 0xdeadbeefcafef00dull;
  meta.distinct_states = 123456;
  meta.depth_reached = 17;
  meta.frontier_size = 999;
  meta.deadlock_states = 3;
  meta.seconds = 12.5;
  meta.use_symmetry = true;
  meta.visited_runs = {"visited-000000.run", "visited-000001.run"};
  meta.frontier_segment = "frontier.seg";
  JsonObject cov;
  cov["transitions"] = Json(static_cast<int64_t>(42));
  meta.coverage = Json(std::move(cov));

  auto back = store::CheckpointMeta::FromJson(meta.ToJson());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().format_version, store::kCheckpointFormatVersion);
  EXPECT_EQ(back.value().spec_name, meta.spec_name);
  EXPECT_EQ(back.value().spec_hash, meta.spec_hash);
  EXPECT_EQ(back.value().distinct_states, meta.distinct_states);
  EXPECT_EQ(back.value().depth_reached, meta.depth_reached);
  EXPECT_EQ(back.value().frontier_size, meta.frontier_size);
  EXPECT_EQ(back.value().deadlock_states, meta.deadlock_states);
  EXPECT_DOUBLE_EQ(back.value().seconds, meta.seconds);
  EXPECT_EQ(back.value().use_symmetry, meta.use_symmetry);
  EXPECT_EQ(back.value().visited_runs, meta.visited_runs);
  EXPECT_EQ(back.value().frontier_segment, meta.frontier_segment);
  EXPECT_EQ(back.value().coverage["transitions"].as_int(), 42);
}

TEST(CheckpointMeta, FromJsonRejectsGarbage) {
  EXPECT_FALSE(store::CheckpointMeta::FromJson(Json()).ok());
  JsonObject o;
  o["format"] = Json(std::string("something-else"));
  EXPECT_FALSE(store::CheckpointMeta::FromJson(Json(std::move(o))).ok());
}

}  // namespace
}  // namespace sandtable
