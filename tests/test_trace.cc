#include <gtest/gtest.h>

#include "src/raftspec/raft_common.h"
#include "src/trace/replay.h"

namespace sandtable {
namespace {

namespace rs = raftspec;

Value SpecMsg() {
  return Value::Record({{"mtype", Value::Str("RV")},
                        {"src", rs::NodeV(0)},
                        {"dst", rs::NodeV(2)},
                        {"term", Value::Int(3)},
                        {"lastLogIndex", Value::Int(1)},
                        {"lastLogTerm", Value::Int(2)}});
}

TEST(Trace, SpecMsgToWireStripsModels) {
  const std::string wire = trace::SpecMsgToWireBytes(SpecMsg());
  auto j = Json::Parse(wire);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value()["src"].as_int(), 0);
  EXPECT_EQ(j.value()["dst"].as_int(), 2);
  EXPECT_EQ(j.value()["mtype"].as_string(), "RV");
  EXPECT_EQ(wire.find("$model"), std::string::npos);
}

TEST(Trace, WireRoundTripsToSpecMsg) {
  const Value msg = SpecMsg();
  auto back = trace::WireToSpecMsg(trace::SpecMsgToWireBytes(msg), rs::kServerClass);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), msg);
}

TEST(Trace, WireConversionKeepsNestedEntries) {
  const Value entries = Value::Seq(
      {Value::Record({{"term", Value::Int(1)}, {"val", Value::Int(2)}})});
  const Value msg = Value::Record({{"mtype", Value::Str("AE")},
                                   {"src", rs::NodeV(1)},
                                   {"dst", rs::NodeV(0)},
                                   {"term", Value::Int(1)},
                                   {"prevLogIndex", Value::Int(0)},
                                   {"prevLogTerm", Value::Int(0)},
                                   {"entries", entries},
                                   {"commit", Value::Int(0)},
                                   {"isRetry", Value::Bool(false)}});
  auto back = trace::WireToSpecMsg(trace::SpecMsgToWireBytes(msg), rs::kServerClass);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), msg);
}

TEST(Trace, WireToSpecMsgRejectsGarbage) {
  EXPECT_FALSE(trace::WireToSpecMsg("not json", "n").ok());
  EXPECT_FALSE(trace::WireToSpecMsg("[]", "n").ok());
}

TraceStep Step(const std::string& action, Json params) {
  TraceStep step;
  step.label.action = action;
  step.label.params = std::move(params);
  step.state = Value::Record({});
  return step;
}

TEST(Trace, CommandFromDeliveryStep) {
  JsonObject p;
  p["src"] = Json(0);
  p["dst"] = Json(2);
  p["msg"] = SpecMsg().ToJson();
  auto cmd = trace::CommandFromStep(Step("HandleRequestVoteRequest", Json(std::move(p))));
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd.value().type, trace::CommandType::kDeliver);
  EXPECT_EQ(cmd.value().src, 0);
  EXPECT_EQ(cmd.value().dst, 2);
  EXPECT_EQ(cmd.value().wire, trace::SpecMsgToWireBytes(SpecMsg()));
}

TEST(Trace, DeliveryStepCarriesDelayedFlag) {
  JsonObject p;
  p["src"] = Json(0);
  p["dst"] = Json(2);
  p["msg"] = SpecMsg().ToJson();
  p["delayed"] = Json(true);
  auto cmd = trace::CommandFromStep(Step("HandleRequestVoteRequest", Json(std::move(p))));
  ASSERT_TRUE(cmd.ok());
  EXPECT_TRUE(cmd.value().from_delayed);
}

TEST(Trace, CommandFromTimeoutSteps) {
  JsonObject p;
  p["node"] = Json(1);
  auto cmd = trace::CommandFromStep(Step("Timeout", Json(p)));
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd.value().type, trace::CommandType::kTimeout);
  EXPECT_EQ(cmd.value().timer_kind, "election");
  EXPECT_EQ(cmd.value().node, 1);

  auto hb = trace::CommandFromStep(Step("HeartbeatTimeout", Json(p)));
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(hb.value().timer_kind, "heartbeat");
}

TEST(Trace, CommandFromClientSteps) {
  JsonObject p;
  p["node"] = Json(0);
  p["val"] = Json(2);
  auto cmd = trace::CommandFromStep(Step("ClientRequest", Json(std::move(p))));
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd.value().type, trace::CommandType::kClientRequest);
  EXPECT_EQ(cmd.value().request["op"].as_string(), "propose");
  EXPECT_EQ(cmd.value().request["val"].as_int(), 2);

  JsonObject r;
  r["node"] = Json(0);
  r["key"] = Json(std::string("x"));
  r["val"] = Json(1);
  auto read = trace::CommandFromStep(Step("ClientRead", Json(std::move(r))));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().type, trace::CommandType::kClientRead);
  EXPECT_EQ(read.value().expected_response["val"].as_int(), 1);
}

TEST(Trace, CommandFromFailureSteps) {
  JsonObject p;
  p["node"] = Json(2);
  EXPECT_EQ(trace::CommandFromStep(Step("NodeCrash", Json(p))).value().type,
            trace::CommandType::kCrash);
  EXPECT_EQ(trace::CommandFromStep(Step("NodeRestart", Json(p))).value().type,
            trace::CommandType::kRestart);

  JsonObject part;
  part["side"] = Json(JsonArray{Json(0), Json(2)});
  auto cmd = trace::CommandFromStep(Step("PartitionStart", Json(std::move(part))));
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd.value().side, (std::set<int>{0, 2}));
  EXPECT_EQ(trace::CommandFromStep(Step("PartitionHeal", Json(JsonObject{}))).value().type,
            trace::CommandType::kHeal);
}

TEST(Trace, CommandFromUdpFaultSteps) {
  JsonObject p;
  p["src"] = Json(0);
  p["dst"] = Json(1);
  p["msg"] = SpecMsg().ToJson();
  EXPECT_EQ(trace::CommandFromStep(Step("DropMessage", Json(p))).value().type,
            trace::CommandType::kDrop);
  EXPECT_EQ(trace::CommandFromStep(Step("DuplicateMessage", Json(p))).value().type,
            trace::CommandType::kDuplicate);
}

TEST(Trace, CommandFromSnapshotStep) {
  JsonObject p;
  p["node"] = Json(0);
  auto cmd = trace::CommandFromStep(Step("TakeSnapshot", Json(std::move(p))));
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd.value().type, trace::CommandType::kCompact);
  EXPECT_EQ(cmd.value().request["op"].as_string(), "compact");
}

TEST(Trace, UnknownActionIsAnError) {
  auto cmd = trace::CommandFromStep(Step("SomethingSystemSpecific", Json(JsonObject{})));
  EXPECT_FALSE(cmd.ok());
}

}  // namespace
}  // namespace sandtable
