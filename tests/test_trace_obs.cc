// Tracing and flight-recorder tests (labels obs, trace; run under TSan via
// scripts/run_tests.sh): tracer buffer cap and drop accounting, cross-thread
// span attribution, the disabled-mode zero-allocation guarantee, PhaseTimer's
// histogram+span unification, run-id consistency across progress JSONL /
// reports / trace metadata, the flight-recorder ring, and a fork regression
// that raises SIGSEGV mid-BFS and asserts a well-formed crash dump.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/mc/bfs.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/phase_timer.h"
#include "src/obs/progress.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/util/json.h"
#include "src/util/run_id.h"
#include "tests/toy_specs.h"

// Allocation counter for the disabled-mode test: the trace emit path must not
// reach operator new when no sink is installed.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sandtable {
namespace obs {
namespace {

std::vector<TraceEvent> EventsNamed(const std::vector<TraceEvent>& events,
                                    const std::string& name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events) {
    if (e.name != nullptr && name == e.name) {
      out.push_back(e);
    }
  }
  return out;
}

TEST(Tracer, RecordsSpansInstantsAndCounters) {
  Tracer tracer;
  tracer.Install();
  {
    TraceSpan span("unit.span", "a", 7);
    span.set_sarg("who", "tenant-x");
    TraceInstant("unit.instant", "d", 3);
    TraceCounter("unit.counter", 42);
  }
  tracer.Uninstall();

  const std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 3u);
  const auto spans = EventsNamed(events, "unit.span");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, TraceEventKind::kComplete);
  EXPECT_EQ(spans[0].arg1, 7);
  EXPECT_STREQ(spans[0].sarg, "tenant-x");
  const auto instants = EventsNamed(events, "unit.instant");
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_EQ(instants[0].kind, TraceEventKind::kInstant);
  const auto counters = EventsNamed(events, "unit.counter");
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].kind, TraceEventKind::kCounter);
  EXPECT_EQ(counters[0].arg1, 42);
  // The span closed after the instant fired inside it, so its end covers the
  // instant's timestamp.
  EXPECT_LE(spans[0].ts_ns, instants[0].ts_ns);
  EXPECT_GE(spans[0].ts_ns + spans[0].dur_ns, instants[0].ts_ns);

  const Json doc = tracer.ToChromeJson();
  EXPECT_EQ(doc["metadata"]["run_id"].as_string(), RunId());
  EXPECT_EQ(doc["metadata"]["schema"].as_string(), "sandtable-trace-1");
  EXPECT_GE(doc["traceEvents"].size(), 3u);
}

TEST(Tracer, CapsPerThreadEventsAndCountsDrops) {
  Tracer::Options opts;
  opts.max_events_per_thread = 64;
  opts.chunk_events = 16;  // force chunk growth before the cap
  Tracer tracer(opts);
  tracer.Install();
  for (int i = 0; i < 200; ++i) {
    TraceInstant("cap.event", "i", i);
  }
  tracer.Uninstall();
  EXPECT_EQ(tracer.Drain().size(), 64u);
  EXPECT_EQ(tracer.dropped_events(), 136u);
  // The drop count survives into the export metadata.
  EXPECT_EQ(tracer.ToChromeJson()["metadata"]["dropped_events"].as_int(), 136);
}

TEST(Tracer, CrossThreadSpansLandInTheirOwnLanes) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 10;
  Tracer tracer;
  tracer.Install();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t]() {
      TraceSetCurrentThreadName("lane-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("cross.span", "owner", t);
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  tracer.Uninstall();

  const std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kSpansPerThread));
  // Every event sits in exactly one thread's lane, and each lane carries one
  // owner value — begin/end pairing never mixes lanes.
  std::map<uint32_t, std::set<int64_t>> owners_by_tid;
  for (const TraceEvent& e : events) {
    owners_by_tid[e.tid].insert(e.arg1);
  }
  ASSERT_EQ(owners_by_tid.size(), static_cast<size_t>(kThreads));
  std::set<int64_t> owners;
  for (const auto& [tid, set] : owners_by_tid) {
    ASSERT_EQ(set.size(), 1u) << "lane " << tid << " mixes threads";
    owners.insert(*set.begin());
  }
  EXPECT_EQ(owners.size(), static_cast<size_t>(kThreads));

  // The export names each lane.
  const Json doc = tracer.ToChromeJson();
  std::set<std::string> lane_names;
  for (size_t i = 0; i < doc["traceEvents"].size(); ++i) {
    const Json& e = doc["traceEvents"][i];
    if (e["ph"].as_string() == "M" && e["name"].as_string() == "thread_name") {
      lane_names.insert(e["args"]["name"].as_string());
    }
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(lane_names.count("lane-" + std::to_string(t)))
        << "missing thread_name metadata for lane-" << t;
  }
}

TEST(Tracer, DisabledModeAllocatesNothing) {
  ASSERT_FALSE(TraceActive()) << "a sink leaked from a previous test";
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("off.span", "i", i);
    span.set_sarg("s", "ignored");
    TraceInstant("off.instant", "i", i);
    TraceCounter("off.counter", i);
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "disabled-mode emit sites allocated";
}

TEST(PhaseTimer, OneScopeFeedsHistogramAndSpan) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("phase.unit");
  Tracer tracer;
  tracer.Install();
  {
    PhaseTimer timer(&hist, "phase.unit");
  }
  tracer.Uninstall();
  EXPECT_EQ(hist.Snapshot().count, 1u);
  const auto spans = EventsNamed(tracer.Drain(), "phase.unit");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, TraceEventKind::kComplete);

  // Without a tracer the same scope still records the histogram sample.
  {
    PhaseTimer timer(&hist, "phase.unit");
  }
  EXPECT_EQ(hist.Snapshot().count, 2u);
}

TEST(RunId, OneIdAcrossProgressReportAndTraceMetadata) {
  SetRunId("cafe0123cafe0123");
  ASSERT_EQ(RunId(), "cafe0123cafe0123");

  // Progress JSONL line.
  std::ostringstream jsonl;
  ProgressOptions popts;
  popts.every_states = 1;
  ProgressReporter reporter(&jsonl, popts);
  ProgressSample sample;
  sample.engine = "bfs";
  sample.distinct_states = 1;
  reporter.Emit(sample);
  auto line = Json::Parse(jsonl.str());
  ASSERT_TRUE(line.ok()) << line.error();
  EXPECT_EQ(line.value()["run_id"].as_string(), "cafe0123cafe0123");

  // Final report.
  MetricsRegistry registry;
  const Json report = MakeReport("bfs", Json(JsonObject{}), &registry);
  EXPECT_EQ(report["run_id"].as_string(), "cafe0123cafe0123");
  EXPECT_NE(ReportToText(report).find("cafe0123cafe0123"), std::string::npos);

  // Trace metadata.
  Tracer tracer;
  tracer.Install();
  TraceInstant("id.check");
  tracer.Uninstall();
  EXPECT_EQ(tracer.ToChromeJson()["metadata"]["run_id"].as_string(),
            "cafe0123cafe0123");
}

TEST(FlightRecorder, RingKeepsTheMostRecentEvents) {
  FlightRecorder::Options opts;
  opts.capacity = 8;
  opts.install_signal_handlers = false;
  FlightRecorder recorder(opts);
  recorder.Install();
  ASSERT_EQ(FlightRecorder::Installed(), &recorder);
  for (int i = 0; i < 20; ++i) {
    TraceInstant("ring.event", "i", i);
  }
  EXPECT_EQ(recorder.recorded(), 20u);

  const std::vector<TraceEvent> snap = recorder.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].arg1, static_cast<int64_t>(12 + i)) << "at " << i;
  }

  const Json recent = recorder.RecentJson(/*last_n=*/4);
  EXPECT_EQ(recent["type"].as_string(), "flight_recorder");
  ASSERT_EQ(recent["events"].size(), 4u);
  EXPECT_EQ(recent["events"][3]["args"]["i"].as_int(), 19);
  recorder.Uninstall();
  EXPECT_EQ(FlightRecorder::Installed(), nullptr);
  EXPECT_FALSE(TraceActive());
}

// Satellite regression: a child installs the recorder, explores a toy spec
// (so the ring holds real bfs.level spans), then dies on SIGSEGV. The parent
// requires the crash dump to exist, parse, and hold the last events.
TEST(FlightRecorder, DumpsWellFormedJsonOnSigsegvMidBfs) {
  const std::string dump =
      "/tmp/st-flight-" + std::to_string(::getpid()) + ".json";
  ::unlink(dump.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child. Quiet the handler's stderr dump; _Exit on any unexpected path.
    std::freopen("/dev/null", "w", stderr);
    FlightRecorder::Options opts;
    opts.capacity = 64;
    opts.dump_path = dump;
    FlightRecorder recorder(opts);
    recorder.Install();
    const Spec spec = toys::Counter(200);
    const BfsResult r = BfsCheck(spec, {});
    if (r.distinct_states == 0) {
      std::_Exit(3);
    }
    ::raise(SIGSEGV);
    std::_Exit(4);  // unreachable if the handler re-raises correctly
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited " << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
      << " instead of dying on the signal";
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  std::ifstream f(dump);
  ASSERT_TRUE(f.good()) << "no crash dump at " << dump;
  std::stringstream ss;
  ss << f.rdbuf();
  auto doc = Json::Parse(ss.str());
  ASSERT_TRUE(doc.ok()) << "dump does not parse: " << doc.error();
  EXPECT_EQ(doc.value()["type"].as_string(), "flight_recorder");
  EXPECT_EQ(doc.value()["signal"].as_int(), SIGSEGV);
  EXPECT_FALSE(doc.value()["run_id"].as_string().empty());
  const Json& events = doc.value()["events"];
  ASSERT_GT(events.size(), 0u);
  bool saw_bfs_level = false;
  for (size_t i = 0; i < events.size(); ++i) {
    saw_bfs_level = saw_bfs_level ||
                    events[i]["name"].as_string() == "bfs.level";
  }
  EXPECT_TRUE(saw_bfs_level) << "ring lost the BFS spans";
  ::unlink(dump.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace sandtable
