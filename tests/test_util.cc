#include <gtest/gtest.h>

#include <set>

#include "src/util/hash.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/run_id.h"
#include "src/util/strings.h"

namespace sandtable {
namespace {

TEST(Hash, FnvKnownValues) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(FnvHash("", 0u), kFnvOffsetBasis);
  EXPECT_NE(FnvHash("a"), FnvHash("b"));
  EXPECT_EQ(FnvHash("sandtable"), FnvHash("sandtable"));
}

TEST(Hash, CombineOrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(Hash, Mix64Bijective) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) {
    outputs.insert(Mix64(i));
  }
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.Below(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Strings, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = StrSplit("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitEmptyString) {
  const auto parts = StrSplit("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("sandtable", "sand"));
  EXPECT_FALSE(StartsWith("sand", "sandtable"));
  EXPECT_TRUE(EndsWith("sandtable", "table"));
  EXPECT_FALSE(EndsWith("table", "sandtable"));
}

TEST(Strings, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \n"), "a b");
  EXPECT_EQ(StripWhitespace("\t\r\n "), "");
}

TEST(RunId, ShapeAndOverride) {
  // The minted id is 16 lowercase hex chars; ShortRunId is its prefix.
  const std::string id = RunId();
  EXPECT_EQ(id.size(), 16u);
  EXPECT_EQ(id.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(ShortRunId(), id.substr(0, 8));
  SetRunId("feedface00000001");
  EXPECT_EQ(RunId(), "feedface00000001");
  EXPECT_EQ(ShortRunId(), "feedface");
  EXPECT_NE(BuildVersion(), nullptr);
}

TEST(Logging, LineCarriesRunIdAndMonotonicSequence) {
  SetRunId("feedface00000001");
  const std::string a = internal::FormatLogLine(LogLevel::kInfo, "hello one");
  const std::string b = internal::FormatLogLine(LogLevel::kWarn, "hello two");
  // [<run8> #<seq> <elapsed>s T<tid> <LEVEL>] <line>
  EXPECT_EQ(a.rfind("[feedface #", 0), 0u) << a;
  EXPECT_NE(a.find(" INFO] hello one"), std::string::npos) << a;
  EXPECT_NE(b.find(" WARN] hello two"), std::string::npos) << b;
  auto seq_of = [](const std::string& line) {
    const size_t hash = line.find('#');
    return std::stoull(line.substr(hash + 1));
  };
  EXPECT_GT(seq_of(b), seq_of(a)) << a << " vs " << b;
}

}  // namespace
}  // namespace sandtable
