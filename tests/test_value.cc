#include <gtest/gtest.h>

#include <vector>

#include "src/value/value.h"

namespace sandtable {
namespace {

TEST(Value, ScalarBasics) {
  EXPECT_TRUE(Value::Bool(true).bool_v());
  EXPECT_EQ(Value::Int(-5).int_v(), -5);
  EXPECT_EQ(Value::Str("abc").str_v(), "abc");
  EXPECT_EQ(Value::Model("n", 2).model_class(), "n");
  EXPECT_EQ(Value::Model("n", 2).model_index(), 2);
}

TEST(Value, DefaultIsZero) {
  Value v;
  EXPECT_EQ(v.kind(), ValueKind::kInt);
  EXPECT_EQ(v.int_v(), 0);
}

TEST(Value, EqualityAndHash) {
  const Value a = Value::Seq({Value::Int(1), Value::Str("x")});
  const Value b = Value::Seq({Value::Int(1), Value::Str("x")});
  const Value c = Value::Seq({Value::Str("x"), Value::Int(1)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a, c);
}

TEST(Value, SetsAreCanonical) {
  const Value a = Value::Set({Value::Int(2), Value::Int(1), Value::Int(2)});
  const Value b = Value::Set({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(Value, SetOperations) {
  Value s = Value::EmptySet();
  s = s.SetAdd(Value::Int(3)).SetAdd(Value::Int(1)).SetAdd(Value::Int(3));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(Value::Int(1)));
  EXPECT_FALSE(s.Contains(Value::Int(2)));
  s = s.SetRemove(Value::Int(1));
  EXPECT_FALSE(s.Contains(Value::Int(1)));
  EXPECT_EQ(s.SetRemove(Value::Int(99)), s);
  const Value u = s.SetUnion(Value::Set({Value::Int(7)}));
  EXPECT_TRUE(u.Contains(Value::Int(7)));
  EXPECT_TRUE(u.Contains(Value::Int(3)));
}

TEST(Value, RecordFieldAccess) {
  const Value r = Value::Record({{"y", Value::Int(2)}, {"x", Value::Int(1)}});
  EXPECT_TRUE(r.has_field("x"));
  EXPECT_FALSE(r.has_field("z"));
  EXPECT_EQ(r.field("x").int_v(), 1);
  // Fields are sorted by name.
  EXPECT_EQ(r.record_fields()[0].first, "x");
}

TEST(Value, RecordFunctionalUpdate) {
  const Value r = Value::Record({{"x", Value::Int(1)}});
  const Value r2 = r.WithField("x", Value::Int(5)).WithField("y", Value::Int(6));
  EXPECT_EQ(r.field("x").int_v(), 1);  // original untouched
  EXPECT_EQ(r2.field("x").int_v(), 5);
  EXPECT_EQ(r2.field("y").int_v(), 6);
  EXPECT_FALSE(r2.WithoutField("y").has_field("y"));
}

TEST(Value, SeqOperations) {
  Value s = Value::EmptySeq();
  s = s.Append(Value::Int(1)).Append(Value::Int(2)).Append(Value::Int(3));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.Head().int_v(), 1);
  EXPECT_EQ(s.Tail().size(), 2u);
  EXPECT_EQ(s.DropLast().size(), 2u);
  EXPECT_EQ(s.at(1).int_v(), 2);
  EXPECT_EQ(s.SeqSet(1, Value::Int(9)).at(1).int_v(), 9);
}

TEST(Value, SubSeqIsOneBasedInclusive) {
  Value s = Value::Seq({Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)});
  const Value mid = s.SubSeq(2, 3);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid.at(0).int_v(), 2);
  EXPECT_EQ(mid.at(1).int_v(), 3);
  EXPECT_EQ(s.SubSeq(3, 100).size(), 2u);  // clamps
  EXPECT_EQ(s.SubSeq(4, 2).size(), 0u);    // empty range
}

TEST(Value, FunOperations) {
  Value f = Value::EmptyFun();
  f = f.FunSet(Value::Str("a"), Value::Int(1));
  f = f.FunSet(Value::Str("b"), Value::Int(2));
  EXPECT_TRUE(f.FunHas(Value::Str("a")));
  EXPECT_EQ(f.Apply(Value::Str("b")).int_v(), 2);
  f = f.FunSet(Value::Str("a"), Value::Int(9));
  EXPECT_EQ(f.Apply(Value::Str("a")).int_v(), 9);
  EXPECT_EQ(f.size(), 2u);
  f = f.FunRemove(Value::Str("a"));
  EXPECT_FALSE(f.FunHas(Value::Str("a")));
}

TEST(Value, TotalOrderByKindThenContent) {
  // Kind order: bool < int < string < model < seq < set < record < fun.
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(5), Value::Str(""));
  EXPECT_LT(Value::Str("z"), Value::Model("a", 0));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Seq({Value::Int(1)}), Value::Seq({Value::Int(1), Value::Int(0)}));
}

TEST(Value, ToStringTlaFlavoured) {
  const Value r = Value::Record(
      {{"term", Value::Int(2)},
       {"log", Value::Seq({Value::Record({{"v", Value::Int(1)}})})}});
  EXPECT_EQ(r.ToString(), "[log |-> <<[v |-> 1]>>, term |-> 2]");
  EXPECT_EQ(Value::Model("n", 0).ToString(), "n1");
  EXPECT_EQ(Value::Set({Value::Int(2), Value::Int(1)}).ToString(), "{1, 2}");
}

TEST(Value, JsonRoundTrip) {
  const Value v = Value::Record(
      {{"b", Value::Bool(false)},
       {"m", Value::Model("n", 1)},
       {"s", Value::Set({Value::Int(1), Value::Int(2)})},
       {"f", Value::Fun({{Value::Model("n", 0), Value::Seq({Value::Int(7)})}})}});
  auto back = Value::FromJson(v.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), v);
  EXPECT_EQ(back.value().hash(), v.hash());
}

TEST(Value, PermuteModelSwapsIndices) {
  const Value v = Value::Fun({{Value::Model("n", 0), Value::Int(10)},
                              {Value::Model("n", 1), Value::Int(20)}});
  const Value p = v.PermuteModel("n", {1, 0});
  EXPECT_EQ(p.Apply(Value::Model("n", 0)).int_v(), 20);
  EXPECT_EQ(p.Apply(Value::Model("n", 1)).int_v(), 10);
  // Other classes untouched.
  const Value other = Value::Model("m", 0);
  EXPECT_EQ(other.PermuteModel("n", {1, 0}), other);
}

TEST(Value, PermuteKeepsSetsCanonical) {
  const Value s = Value::Set({Value::Model("n", 0), Value::Model("n", 2)});
  const Value p = s.PermuteModel("n", {2, 1, 0});
  EXPECT_TRUE(p.Contains(Value::Model("n", 0)));
  EXPECT_TRUE(p.Contains(Value::Model("n", 2)));
  EXPECT_EQ(p, s);  // {n0,n2} maps to {n2,n0} = same set
}

TEST(Value, DiffFindsNestedChanges) {
  const Value a = Value::Record({{"x", Value::Int(1)}, {"y", Value::Seq({Value::Int(1)})}});
  const Value b = Value::Record({{"x", Value::Int(2)}, {"y", Value::Seq({Value::Int(1)})}});
  auto diff = ValueDiff(a, b);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].path, "x");
  EXPECT_EQ(diff[0].lhs, "1");
  EXPECT_EQ(diff[0].rhs, "2");
}

TEST(Value, DiffReportsAbsentFields) {
  const Value a = Value::Record({{"x", Value::Int(1)}});
  const Value b = Value::Record({{"y", Value::Int(2)}});
  auto diff = ValueDiff(a, b);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0].rhs, "<absent>");
  EXPECT_EQ(diff[1].lhs, "<absent>");
}

TEST(Value, DiffSeqElements) {
  const Value a = Value::Seq({Value::Int(1), Value::Int(2)});
  const Value b = Value::Seq({Value::Int(1), Value::Int(3), Value::Int(4)});
  auto diff = ValueDiff(a, b);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0].path, "[2]");
  EXPECT_EQ(diff[1].path, "[3]");
  EXPECT_EQ(diff[1].lhs, "<absent>");
}

TEST(Value, DiffEmptyOnEqual) {
  const Value a = Value::Fun({{Value::Int(1), Value::Str("x")}});
  EXPECT_TRUE(ValueDiff(a, a).empty());
}

TEST(Value, StructuralSharingCheapCopies) {
  Value big = Value::EmptySeq();
  for (int i = 0; i < 1000; ++i) {
    big = big.Append(Value::Int(i));
  }
  const Value r1 = Value::Record({{"log", big}, {"x", Value::Int(1)}});
  const Value r2 = r1.WithField("x", Value::Int(2));
  // The log is shared, not copied: equal hashes come from the same node.
  EXPECT_EQ(r1.field("log").hash(), r2.field("log").hash());
  EXPECT_EQ(r2.field("log"), big);
}

}  // namespace
}  // namespace sandtable
