// Property-based tests over randomly generated values: algebraic laws of the
// value model that the model checker's correctness rests on (total order,
// hash consistency, canonical forms, serialization round trips, symmetry
// invariance of the permutation-aware hash).
#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/value/value.h"
#include "tests/value_generators.h"

namespace sandtable {
namespace {

class ValuePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValuePropertyTest, CompareIsAStrictTotalOrder) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Value a = RandomValue(rng);
    const Value b = RandomValue(rng);
    const Value c = RandomValue(rng);
    // Irreflexivity / consistency with equality.
    EXPECT_EQ(Compare(a, a), 0);
    EXPECT_EQ(a == b, Compare(a, b) == 0);
    // Antisymmetry.
    EXPECT_EQ(Compare(a, b) < 0, Compare(b, a) > 0) << a.ToString() << " vs "
                                                    << b.ToString();
    // Transitivity.
    if (Compare(a, b) <= 0 && Compare(b, c) <= 0) {
      EXPECT_LE(Compare(a, c), 0);
    }
  }
}

TEST_P(ValuePropertyTest, EqualValuesHashEqual) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Value a = RandomValue(rng);
    // Rebuild through JSON: a structurally equal but freshly allocated value.
    auto b = Value::FromJson(a.ToJson());
    ASSERT_TRUE(b.ok()) << a.ToString();
    EXPECT_EQ(a, b.value());
    EXPECT_EQ(a.hash(), b.value().hash());
  }
}

TEST_P(ValuePropertyTest, JsonRoundTripIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Value a = RandomValue(rng);
    auto parsed = Json::Parse(a.ToJson().Dump());
    ASSERT_TRUE(parsed.ok());
    auto back = Value::FromJson(parsed.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), a);
  }
}

TEST_P(ValuePropertyTest, DiffEmptyIffEqual) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Value a = RandomValue(rng);
    const Value b = RandomValue(rng);
    EXPECT_EQ(ValueDiff(a, b).empty(), a == b);
  }
}

TEST_P(ValuePropertyTest, PermutationRoundTrips) {
  Rng rng(GetParam());
  const std::vector<int> perm = {2, 0, 1};
  const std::vector<int> inverse = {1, 2, 0};
  for (int i = 0; i < 200; ++i) {
    const Value a = RandomValue(rng);
    EXPECT_EQ(a.PermuteModel("n", perm).PermuteModel("n", inverse), a);
    // Identity permutation is a no-op.
    EXPECT_EQ(a.PermuteModel("n", {0, 1, 2}), a);
  }
}

TEST_P(ValuePropertyTest, PermutedHashMatchesMaterializedPermutation) {
  Rng rng(GetParam());
  const std::vector<std::vector<int>> perms = {{0, 1, 2}, {1, 0, 2}, {2, 1, 0},
                                               {0, 2, 1}, {1, 2, 0}, {2, 0, 1}};
  for (int i = 0; i < 100; ++i) {
    const Value a = RandomValue(rng);
    for (const auto& perm : perms) {
      // HashPermuted(a, p) must equal HashPermuted(PermuteModel(a, p), id):
      // both describe the same permuted value.
      EXPECT_EQ(a.HashPermuted("n", perm),
                a.PermuteModel("n", perm).HashPermuted("n", {0, 1, 2}))
          << a.ToString();
    }
  }
}

TEST_P(ValuePropertyTest, SymmetricMinHashIsPermutationInvariant) {
  Rng rng(GetParam());
  const std::vector<std::vector<int>> perms = {{0, 1, 2}, {1, 0, 2}, {2, 1, 0},
                                               {0, 2, 1}, {1, 2, 0}, {2, 0, 1}};
  for (int i = 0; i < 100; ++i) {
    const Value a = RandomValue(rng);
    const uint64_t base = a.SymmetricMinHash("n", perms);
    for (const auto& perm : perms) {
      EXPECT_EQ(a.PermuteModel("n", perm).SymmetricMinHash("n", perms), base)
          << a.ToString();
    }
  }
}

TEST_P(ValuePropertyTest, SetAlgebra) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Value s = Value::EmptySet();
    std::vector<Value> inserted;
    for (int k = 0; k < 5; ++k) {
      Value v = RandomValue(rng, 1);
      s = s.SetAdd(v);
      inserted.push_back(std::move(v));
    }
    // Idempotent insert.
    for (const Value& v : inserted) {
      EXPECT_EQ(s.SetAdd(v), s);
      EXPECT_TRUE(s.Contains(v));
    }
    // Remove then membership fails; re-add restores the set.
    const Value& victim = inserted[rng.Below(inserted.size())];
    const Value without = s.SetRemove(victim);
    EXPECT_FALSE(without.Contains(victim));
    EXPECT_EQ(without.SetAdd(victim), s);
    // Union is commutative and absorbing.
    const Value t = RandomValue(rng, 1);
    const Value u = Value::Set({t});
    EXPECT_EQ(s.SetUnion(u), u.SetUnion(s));
    EXPECT_EQ(s.SetUnion(s), s);
  }
}

TEST_P(ValuePropertyTest, FunUpdateLaws) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Value f = Value::EmptyFun();
    const Value k1 = Value::Int(1);
    const Value k2 = Value::Int(2);
    const Value v1 = RandomValue(rng, 1);
    const Value v2 = RandomValue(rng, 1);
    f = f.FunSet(k1, v1).FunSet(k2, v2);
    // Last write wins.
    const Value v3 = RandomValue(rng, 1);
    EXPECT_EQ(f.FunSet(k1, v3).Apply(k1), v3);
    // Updates to different keys commute.
    EXPECT_EQ(Value::EmptyFun().FunSet(k1, v1).FunSet(k2, v2),
              Value::EmptyFun().FunSet(k2, v2).FunSet(k1, v1));
    // Remove undoes insert on a fresh key.
    EXPECT_EQ(f.FunRemove(k2).FunSet(k2, v2), f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValuePropertyTest, ::testing::Values(1u, 2u, 3u, 4u, 5u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace sandtable
