// End-to-end SandTable workflow on the ZooKeeper/Zab integration: conformance
// between ZabNode and the Zab spec, and replay confirmation of ZooKeeper#1.
#include <gtest/gtest.h>

#include "src/conformance/zab_harness.h"
#include "src/mc/bfs.h"
#include "src/mc/expand.h"
#include "src/net/specnet.h"
#include "src/zabspec/zab_common.h"

namespace sandtable {
namespace {

using conformance::CheckConformance;
using conformance::ConfirmBug;
using conformance::ConformanceOptions;
using conformance::MakeHarnessSpec;
using conformance::MakeZabEngineFactory;
using conformance::MakeZabHarness;
using conformance::MakeZabObserver;
using conformance::ZabHarness;

ZabHarness Tuned(bool with_bugs) {
  ZabHarness h = MakeZabHarness(with_bugs);
  h.profile.budget.max_timeouts = 4;
  h.profile.budget.max_client_requests = 2;
  h.profile.budget.max_crashes = 1;
  h.profile.budget.max_restarts = 1;
  h.profile.budget.max_partitions = 1;
  h.profile.budget.max_rounds = 3;
  h.profile.budget.max_epoch = 3;
  h.profile.budget.max_history = 2;
  return h;
}

TEST(ZabConformance, FixedProfileConforms) {
  const ZabHarness h = Tuned(false);
  const Spec spec = MakeHarnessSpec(h);
  ConformanceOptions opts;
  opts.max_traces = 80;
  opts.max_trace_depth = 35;
  opts.time_budget_s = 90;
  auto report =
      CheckConformance(spec, MakeZabEngineFactory(h), MakeZabObserver(h), opts);
  if (!report.conforms) {
    FAIL() << report.discrepancy->ToString() << "\n" << TraceToString(report.failing_trace);
  }
  EXPECT_GT(report.events_replayed, 200u);
}

TEST(ZabConformance, BuggyProfileConformsWhenAligned) {
  // The vote-order bug lives in both the spec and the impl: aligned switches
  // still conform (which is what makes replay confirmation sound).
  const ZabHarness h = Tuned(true);
  const Spec spec = MakeHarnessSpec(h);
  ConformanceOptions opts;
  opts.max_traces = 60;
  opts.max_trace_depth = 35;
  opts.time_budget_s = 90;
  auto report =
      CheckConformance(spec, MakeZabEngineFactory(h), MakeZabObserver(h), opts);
  if (!report.conforms) {
    FAIL() << report.discrepancy->ToString() << "\n" << TraceToString(report.failing_trace);
  }
}

TEST(ZabConformance, ComparatorMismatchDetected) {
  // Figure 4 scenario for Zab: the specification describes the v3.4.3
  // comparator while the implementation silently carries the fixed one. The
  // divergent comparison (a stale-round notification with a larger zxid
  // reaching a LOOKING node) is too deep for random walks, so drive it
  // deterministically: model check the buggy spec with a reachability probe
  // that fails exactly when such a notification is in flight, append its
  // delivery, and replay against the FIXED implementation — conformance
  // checking must flag the diverging state.
  ZabHarness buggy = MakeZabHarness(true);
  buggy.profile.budget.max_timeouts = 5;
  buggy.profile.budget.max_client_requests = 1;
  buggy.profile.budget.max_crashes = 1;
  buggy.profile.budget.max_restarts = 1;
  buggy.profile.budget.max_rounds = 2;
  buggy.profile.budget.max_epoch = 2;
  buggy.profile.budget.max_history = 1;
  buggy.profile.budget.max_msg_buffer = 3;
  Spec probe = MakeHarnessSpec(buggy);
  probe.invariants.clear();  // pure reachability probe
  probe.transition_invariants.clear();
  const int n = buggy.profile.num_servers;
  probe.invariants.push_back(
      {"__DivergentComparisonReachable", [n](const State& s) {
         using namespace zabspec;  // NOLINT(build/namespaces)
         for (const Value& m : specnet::AllMessages(s.field(kVarNet))) {
           if (m.field("mtype").str_v() != kMsgNotification ||
               m.field("state").str_v() != kRoleLooking) {
             continue;
           }
           const Value& dst = m.field("dst");
           if (Role(s, dst).str_v() != kRoleLooking ||
               m.field("round").int_v() >= Round(s, dst)) {
             continue;
           }
           if (VoteBetter(m.field("vote"), m.field("round").int_v(), Vote(s, dst),
                          Round(s, dst), /*total_order_bug=*/true)) {
             return false;  // probe hit: this delivery compares differently
           }
         }
         return true;
       }});
  BfsOptions opts;
  opts.max_distinct_states = 60000000;
  opts.time_budget_s = 900;
  const BfsResult r = BfsCheck(probe, opts);
  ASSERT_TRUE(r.violation.has_value()) << "divergent comparison not reachable";

  // Append the delivery of a stale-round notification to a LOOKING node.
  std::vector<TraceStep> trace = r.violation->trace;
  bool extended = false;
  for (Successor& s2 : ExpandAll(probe, trace.back().state, nullptr)) {
    if (s2.label.action != "HandleNotificationMsg") {
      continue;
    }
    const Json& msg = s2.label.params["msg"];
    const int dst = static_cast<int>(s2.label.params["dst"].as_int());
    if (msg["state"].as_string() == zabspec::kRoleLooking &&
        msg["round"].as_int() <
            zabspec::Round(trace.back().state, zabspec::NodeV(dst))) {
      trace.push_back(TraceStep{s2.label, s2.state});
      extended = true;
      break;
    }
  }
  ASSERT_TRUE(extended) << "no stale-round delivery available";

  ZabHarness impl_side = buggy;
  impl_side.profile.bugs.zk1_vote_order = false;  // the impl was fixed
  auto replay = conformance::ReplayTrace(MakeZabEngineFactory(impl_side),
                                         MakeZabObserver(buggy), trace);
  ASSERT_FALSE(replay.conforms) << "comparator divergence not detected";
  ASSERT_TRUE(replay.discrepancy.has_value());
  EXPECT_EQ(replay.discrepancy->kind, "state");
}

TEST(ZabConformance, VoteOrderBugConfirmedByReplay) {
  ZabHarness h = MakeZabHarness(true);
  h.profile.budget.max_timeouts = 5;
  h.profile.budget.max_client_requests = 1;
  h.profile.budget.max_crashes = 1;
  h.profile.budget.max_restarts = 1;
  h.profile.budget.max_rounds = 2;
  h.profile.budget.max_epoch = 2;
  h.profile.budget.max_history = 1;
  h.profile.budget.max_msg_buffer = 3;
  const Spec spec = MakeHarnessSpec(h);
  BfsOptions opts;
  opts.max_distinct_states = 60000000;
  opts.time_budget_s = 900;
  const BfsResult r = BfsCheck(spec, opts);
  ASSERT_TRUE(r.violation.has_value()) << "ZooKeeper#1 not found";
  ASSERT_EQ(r.violation->invariant, "VotesTotallyOrdered");
  auto confirmation =
      ConfirmBug(MakeZabEngineFactory(h), MakeZabObserver(h), r.violation->trace);
  EXPECT_TRUE(confirmation.confirmed)
      << (confirmation.replay.discrepancy ? confirmation.replay.discrepancy->ToString() : "");
}

TEST(ZabConformance, LogParserChannelConforms) {
  ZabHarness h = Tuned(false);
  h.channel = conformance::ObservationChannel::kLogParser;
  const Spec spec = MakeHarnessSpec(h);
  ConformanceOptions opts;
  opts.max_traces = 30;
  opts.max_trace_depth = 25;
  auto report =
      CheckConformance(spec, MakeZabEngineFactory(h), MakeZabObserver(h), opts);
  if (!report.conforms) {
    FAIL() << report.discrepancy->ToString();
  }
}

}  // namespace
}  // namespace sandtable
