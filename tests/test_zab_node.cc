// Unit tests of the ZabNode implementation through the engine: one reign end
// to end (election, discovery, synchronization, broadcast), persistence
// across crashes, and message-order determinism.
#include <gtest/gtest.h>

#include "src/conformance/zab_harness.h"

namespace sandtable {
namespace {

using conformance::MakeZabEngineFactory;
using conformance::MakeZabHarness;

std::unique_ptr<engine::Engine> Cluster() {
  return MakeZabEngineFactory(MakeZabHarness(false))();
}

// Deliver every deliverable proxied message until quiescent.
void DrainNetwork(engine::Engine& eng, int max_steps = 200) {
  for (int i = 0; i < max_steps; ++i) {
    bool delivered = false;
    for (const auto& m : eng.proxy().Pending()) {
      if (m.deliverable && eng.DeliverMessage(m.src, m.dst, m.bytes)) {
        delivered = true;
        break;
      }
    }
    if (!delivered) {
      return;
    }
  }
}

int FindEstablishedLeader(engine::Engine& eng) {
  for (int node = 0; node < eng.num_nodes(); ++node) {
    auto s = eng.QueryNodeState(node);
    if (s.ok() && s.value()["role"].as_string() == "Leading" &&
        s.value()["established"].as_bool()) {
      return node;
    }
  }
  return -1;
}

TEST(ZabNode, StartsLooking) {
  auto eng = Cluster();
  ASSERT_TRUE(eng->StartAll());
  for (int i = 0; i < 3; ++i) {
    auto s = eng->QueryNodeState(i);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s.value()["role"].as_string(), "Looking");
    EXPECT_EQ(s.value()["round"].as_int(), 0);
  }
}

TEST(ZabNode, ElectionEstablishesOneLeader) {
  auto eng = Cluster();
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));
  DrainNetwork(*eng);
  const int leader = FindEstablishedLeader(*eng);
  ASSERT_GE(leader, 0) << "no established leader after draining";
  // The other nodes follow the leader.
  int following = 0;
  for (int i = 0; i < 3; ++i) {
    auto s = eng->QueryNodeState(i);
    ASSERT_TRUE(s.ok());
    if (s.value()["role"].as_string() == "Following") {
      ++following;
      EXPECT_EQ(s.value()["vote"]["leader"].as_int(), leader);
    }
  }
  EXPECT_GE(following, 1);
  // Epoch advanced past the initial 0.
  auto s = eng->QueryNodeState(leader);
  EXPECT_GE(s.value()["acceptedEpoch"].as_int(), 1);
}

TEST(ZabNode, BroadcastCommitsTransaction) {
  auto eng = Cluster();
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));
  DrainNetwork(*eng);
  const int leader = FindEstablishedLeader(*eng);
  ASSERT_GE(leader, 0);

  JsonObject req;
  req["op"] = Json(std::string("propose"));
  req["val"] = Json(7);
  Json resp;
  ASSERT_TRUE(eng->ClientRequest(leader, Json(std::move(req)), &resp));
  EXPECT_TRUE(resp["ok"].as_bool());
  DrainNetwork(*eng);

  auto s = eng->QueryNodeState(leader);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value()["lastCommitted"].as_int(), 1);
  EXPECT_EQ(s.value()["history"].size(), 1u);
  // Followers in the synced quorum also committed.
  int committed = 0;
  for (int i = 0; i < 3; ++i) {
    auto f = eng->QueryNodeState(i);
    committed += (f.ok() && f.value()["lastCommitted"].as_int() == 1) ? 1 : 0;
  }
  EXPECT_GE(committed, 2);
}

TEST(ZabNode, ProposeRejectedAtNonLeader) {
  auto eng = Cluster();
  ASSERT_TRUE(eng->StartAll());
  JsonObject req;
  req["op"] = Json(std::string("propose"));
  req["val"] = Json(1);
  Json resp;
  ASSERT_TRUE(eng->ClientRequest(1, Json(std::move(req)), &resp));
  EXPECT_FALSE(resp["ok"].as_bool());
}

TEST(ZabNode, HistorySurvivesCrash) {
  auto eng = Cluster();
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));
  DrainNetwork(*eng);
  const int leader = FindEstablishedLeader(*eng);
  ASSERT_GE(leader, 0);
  JsonObject req;
  req["op"] = Json(std::string("propose"));
  req["val"] = Json(9);
  Json resp;
  ASSERT_TRUE(eng->ClientRequest(leader, Json(req), &resp));
  DrainNetwork(*eng);

  ASSERT_TRUE(eng->Crash(leader));
  ASSERT_TRUE(eng->Restart(leader));
  auto s = eng->QueryNodeState(leader);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value()["role"].as_string(), "Looking");  // volatile state reset
  EXPECT_EQ(s.value()["round"].as_int(), 0);
  EXPECT_EQ(s.value()["history"].size(), 1u);           // persistent survived
  EXPECT_GE(s.value()["acceptedEpoch"].as_int(), 1);
}

TEST(ZabNode, NotLookingAnswersLookingSender) {
  auto eng = Cluster();
  ASSERT_TRUE(eng->StartAll());
  ASSERT_TRUE(eng->FireTimeout(0, "election"));
  DrainNetwork(*eng);
  ASSERT_GE(FindEstablishedLeader(*eng), 0);
  // A late campaigner solicits votes; established servers answer with their
  // current vote instead of joining the election (Figure 3, lines 18-21).
  ASSERT_TRUE(eng->FireTimeout(2, "election"));
  // Notifications to the two peers are now pending.
  int notifications = 0;
  for (const auto& m : eng->proxy().Pending()) {
    notifications += (m.src == 2 && m.bytes.find("NOTIFICATION") != std::string::npos) ? 1 : 0;
  }
  EXPECT_EQ(notifications, 2);
}

}  // namespace
}  // namespace sandtable
