#include <gtest/gtest.h>

#include "src/mc/bfs.h"
#include "src/mc/expand.h"
#include "src/mc/random_walk.h"
#include "src/net/specnet.h"
#include "src/zabspec/zab_common.h"
#include "src/zabspec/zab_spec.h"

namespace sandtable {
namespace {

using namespace zabspec;  // NOLINT(build/namespaces): test vocabulary

TEST(ZabCommon, ZxidOrder) {
  EXPECT_LT(CompareZxid(Zxid(1, 2), Zxid(2, 1)), 0);
  EXPECT_GT(CompareZxid(Zxid(2, 1), Zxid(1, 9)), 0);
  EXPECT_LT(CompareZxid(Zxid(1, 1), Zxid(1, 2)), 0);
  EXPECT_EQ(CompareZxid(Zxid(1, 1), Zxid(1, 1)), 0);
}

TEST(ZabCommon, CorrectVoteOrderIsTotal) {
  // Enumerate a grid of (leader, zxid, round) pairs and assert antisymmetry +
  // totality of the correct comparator.
  struct P {
    Value vote;
    int64_t round;
  };
  std::vector<P> pairs;
  for (int id = 0; id < 3; ++id) {
    for (int64_t e = 0; e <= 2; ++e) {
      for (int64_t r = 1; r <= 3; ++r) {
        pairs.push_back({MakeVote(NodeV(id), Zxid(e, 1)), r});
      }
    }
  }
  for (const P& a : pairs) {
    EXPECT_FALSE(VoteBetter(a.vote, a.round, a.vote, a.round, false));
    for (const P& b : pairs) {
      const bool ab = VoteBetter(a.vote, a.round, b.vote, b.round, false);
      const bool ba = VoteBetter(b.vote, b.round, a.vote, a.round, false);
      EXPECT_FALSE(ab && ba);
      if (!(a.vote == b.vote) || a.round != b.round) {
        EXPECT_TRUE(ab || ba);
      }
    }
  }
}

TEST(ZabCommon, BuggyVoteOrderBreaksOnCrossRoundZxid) {
  // (round 2, zxid 0) vs (round 1, zxid (1,1)): both "better" under the bug.
  const Value a = MakeVote(NodeV(0), ZeroZxid());
  const Value b = MakeVote(NodeV(1), Zxid(1, 1));
  EXPECT_TRUE(VoteBetter(a, 2, b, 1, true));
  EXPECT_TRUE(VoteBetter(b, 1, a, 2, true));
  // The correct order resolves the same pair one way.
  EXPECT_TRUE(VoteBetter(a, 2, b, 1, false));
  EXPECT_FALSE(VoteBetter(b, 1, a, 2, false));
}

ZabProfile SmallProfile(bool with_bugs) {
  ZabProfile p = GetZabProfile(with_bugs);
  p.budget.max_timeouts = 2;
  p.budget.max_client_requests = 1;
  p.budget.max_rounds = 2;
  p.budget.max_epoch = 2;
  p.budget.max_history = 2;
  p.budget.max_msg_buffer = 5;
  return p;
}

TEST(ZabSpec, TimeoutStartsElection) {
  const Spec spec = MakeZabSpec(SmallProfile(false));
  auto succs = ExpandAll(spec, spec.init_states[0], nullptr);
  ASSERT_EQ(succs.size(), 3u);  // one Timeout per node
  for (const Successor& s : succs) {
    EXPECT_EQ(s.label.action, "Timeout");
    const int node = static_cast<int>(s.label.params["node"].as_int());
    EXPECT_EQ(Round(s.state, NodeV(node)), 1);
    EXPECT_EQ(Vote(s.state, NodeV(node)).field("leader"), NodeV(node));
    // Notifications broadcast to both peers.
    EXPECT_EQ(specnet::TotalInFlight(s.state.field(kVarNet)), 2);
  }
}

// Drive one full reign by always preferring message deliveries: election,
// discovery, synchronization, establishment.
TEST(ZabSpec, FullReignReachable) {
  const Spec spec = MakeZabSpec(SmallProfile(false));
  State s = spec.init_states[0];
  bool established = false;
  Rng rng(3);
  for (int step = 0; step < 60 && !established; ++step) {
    auto succs = ExpandAll(spec, s, nullptr);
    std::erase_if(succs, [&](const Successor& x) { return !spec.WithinConstraint(x.state); });
    if (succs.empty()) {
      break;
    }
    // Prefer message deliveries to make progress.
    Successor* pick = nullptr;
    for (Successor& cand : succs) {
      if (cand.label.kind == EventKind::kMessage) {
        pick = &cand;
        break;
      }
    }
    if (pick == nullptr) {
      pick = &succs[rng.Below(succs.size())];
    }
    s = pick->state;
    for (int i = 0; i < 3; ++i) {
      established = established || (Role(s, NodeV(i)).str_v() == kRoleLeading &&
                                    s.field(kVarEstablished).Apply(NodeV(i)).bool_v());
    }
  }
  EXPECT_TRUE(established) << "no leader established within 60 guided steps";
}

TEST(ZabSpec, FixedSpecHasNoViolationInBoundedSpace) {
  const Spec spec = MakeZabSpec(SmallProfile(false));
  BfsOptions opts;
  opts.max_distinct_states = 400000;
  opts.time_budget_s = 120;
  const BfsResult r = BfsCheck(spec, opts);
  if (r.violation.has_value()) {
    FAIL() << r.violation->invariant << " at depth " << r.violation->depth << "\n"
           << TraceToString(r.violation->trace);
  }
  EXPECT_GT(r.distinct_states, 1000u);
}

TEST(ZabSpec, VoteOrderBugFoundByBfs) {
  // The inversion needs a committed transaction surviving a crash/restart so
  // a fresh round-1 vote with a non-zero zxid coexists with a round-2 vote of
  // an empty-logged node: the trace spans election, discovery,
  // synchronization, broadcast and failure recovery (cf. the paper's
  // observation that the optimal ZooKeeper#1 trace involves all modules).
  ZabProfile p = GetZabProfile(/*with_bugs=*/true);
  p.budget.max_timeouts = 5;
  p.budget.max_client_requests = 1;
  p.budget.max_crashes = 1;
  p.budget.max_restarts = 1;
  p.budget.max_rounds = 2;
  p.budget.max_epoch = 2;
  p.budget.max_history = 1;
  p.budget.max_msg_buffer = 3;
  const Spec spec = MakeZabSpec(p);
  BfsOptions opts;
  opts.max_distinct_states = 60000000;
  opts.time_budget_s = 900;
  const BfsResult r = BfsCheck(spec, opts);
  ASSERT_TRUE(r.violation.has_value())
      << "vote-order bug not found in " << r.distinct_states << " states";
  EXPECT_EQ(r.violation->invariant, "VotesTotallyOrdered");
  // The optimal trace spans election, discovery, synchronization and
  // broadcast before the inverted comparison becomes reachable.
  EXPECT_GT(r.violation->depth, 8u);
}

TEST(ZabSpec, RandomWalksStayTypeSafe) {
  for (bool bugs : {false, true}) {
    const Spec spec = MakeZabSpec(SmallProfile(bugs));
    Rng rng(11);
    WalkOptions opts;
    opts.max_depth = 50;
    for (int i = 0; i < 30; ++i) {
      const WalkResult r = RandomWalk(spec, opts, rng);
      EXPECT_GT(r.depth, 0u);
    }
  }
}

TEST(ZabSpec, SymmetryReducesStateCount) {
  const Spec spec = MakeZabSpec(SmallProfile(false));
  BfsOptions with;
  with.use_symmetry = true;
  with.max_distinct_states = 50000;
  BfsOptions without = with;
  without.use_symmetry = false;
  const BfsResult rs = BfsCheck(spec, with);
  const BfsResult rn = BfsCheck(spec, without);
  // At equal state budgets the symmetric run reaches at least the same depth.
  EXPECT_GE(rs.depth_reached, rn.depth_reached > 0 ? rn.depth_reached - 1 : 0);
}

}  // namespace
}  // namespace sandtable
