// Small specifications used by the model-checker unit tests.
#ifndef SANDTABLE_TESTS_TOY_SPECS_H_
#define SANDTABLE_TESTS_TOY_SPECS_H_

#include "src/spec/spec.h"

namespace sandtable {
namespace toys {

// The Die Hard water-jug puzzle: a 3-gallon and a 5-gallon jug; the invariant
// "big != 4" is violated in minimally 6 steps. A classic TLC counterexample
// exercise with a known-size reachable space (16 states).
inline Spec DieHard() {
  Spec spec;
  spec.name = "diehard";
  spec.init_states.push_back(
      Value::Record({{"small", Value::Int(0)}, {"big", Value::Int(0)}}));

  auto set = [](const State& s, int64_t small, int64_t big) {
    return Value::Record({{"small", Value::Int(small)}, {"big", Value::Int(big)}});
  };
  auto small = [](const State& s) { return s.field("small").int_v(); };
  auto big = [](const State& s) { return s.field("big").int_v(); };

  Action fill_small{"FillSmall", EventKind::kInternal,
                    [=](const State& s, ActionContext& ctx) {
                      if (small(s) < 3) {
                        ctx.Branch("fill");
                        ctx.Emit(set(s, 3, big(s)));
                      }
                    }};
  Action fill_big{"FillBig", EventKind::kInternal,
                  [=](const State& s, ActionContext& ctx) {
                    if (big(s) < 5) {
                      ctx.Branch("fill");
                      ctx.Emit(set(s, small(s), 5));
                    }
                  }};
  Action empty_small{"EmptySmall", EventKind::kInternal,
                     [=](const State& s, ActionContext& ctx) {
                       if (small(s) > 0) {
                         ctx.Emit(set(s, 0, big(s)));
                       }
                     }};
  Action empty_big{"EmptyBig", EventKind::kInternal,
                   [=](const State& s, ActionContext& ctx) {
                     if (big(s) > 0) {
                       ctx.Emit(set(s, small(s), 0));
                     }
                   }};
  Action pour_small_big{"SmallToBig", EventKind::kInternal,
                        [=](const State& s, ActionContext& ctx) {
                          const int64_t amount = std::min(small(s), 5 - big(s));
                          if (amount > 0) {
                            ctx.Emit(set(s, small(s) - amount, big(s) + amount));
                          }
                        }};
  Action pour_big_small{"BigToSmall", EventKind::kInternal,
                        [=](const State& s, ActionContext& ctx) {
                          const int64_t amount = std::min(big(s), 3 - small(s));
                          if (amount > 0) {
                            ctx.Emit(set(s, small(s) + amount, big(s) - amount));
                          }
                        }};
  spec.actions = {fill_small, fill_big, empty_small, empty_big, pour_small_big,
                  pour_big_small};
  spec.invariants.push_back(
      {"BigNotFour", [=](const State& s) { return big(s) != 4; }});
  return spec;
}

// A bounded counter: states 0..max, one increment action. Useful for depth,
// exhaustion and transition-invariant tests.
inline Spec Counter(int64_t max, bool with_bad_jump = false) {
  Spec spec;
  spec.name = "counter";
  spec.init_states.push_back(Value::Record({{"x", Value::Int(0)}}));
  spec.actions.push_back(
      {"Inc",
       EventKind::kClientRequest,
       [max](const State& s, ActionContext& ctx) {
         const int64_t x = s.field("x").int_v();
         if (x < max) {
           ctx.Branch(x % 2 == 0 ? "even" : "odd");
           ctx.Emit(Value::Record({{"x", Value::Int(x + 1)}}));
         }
       },
       // "negative" is declared but unreachable (x starts at 0), so analytics
       // reports flag it — the coverage-hole warning the tests pin down.
       {"even", "odd", "negative"}});
  if (with_bad_jump) {
    // A second action that jumps backwards, violating monotonicity.
    spec.actions.push_back(
        {"Jump", EventKind::kInternal, [](const State& s, ActionContext& ctx) {
           const int64_t x = s.field("x").int_v();
           if (x == 3) {
             ctx.Emit(Value::Record({{"x", Value::Int(1)}}));
           }
         }});
  }
  spec.transition_invariants.push_back(
      {"Monotonic", [](const State& prev, const ActionLabel& label, const State& next) {
         return next.field("x").int_v() >= prev.field("x").int_v();
       }});
  return spec;
}

// A ring of `n` symmetric tokens: each action moves a token between nodes.
// State: fun node -> token count. Used for symmetry-reduction tests:
// with symmetry the reachable space collapses to multisets.
inline Spec TokenRing(int n, int tokens) {
  Spec spec;
  spec.name = "tokenring";
  std::vector<Value::Pair> init;
  for (int i = 0; i < n; ++i) {
    init.emplace_back(Value::Model("p", i), Value::Int(i == 0 ? tokens : 0));
  }
  spec.init_states.push_back(Value::Record({{"held", Value::Fun(std::move(init))}}));
  spec.symmetry = Symmetry{"p", n};
  spec.actions.push_back(
      {"Move", EventKind::kMessage, [n](const State& s, ActionContext& ctx) {
         const Value& held = s.field("held");
         for (int src = 0; src < n; ++src) {
           const Value from = Value::Model("p", src);
           if (held.Apply(from).int_v() == 0) {
             continue;
           }
           for (int dst = 0; dst < n; ++dst) {
             if (dst == src) {
               continue;
             }
             const Value to = Value::Model("p", dst);
             Value next = held.FunSet(from, Value::Int(held.Apply(from).int_v() - 1));
             next = next.FunSet(to, Value::Int(next.Apply(to).int_v() + 1));
             JsonObject params;
             params["src"] = Json(static_cast<int64_t>(src));
             params["dst"] = Json(static_cast<int64_t>(dst));
             ctx.Emit(s.WithField("held", next), Json(std::move(params)));
           }
         }
       }});
  return spec;
}

}  // namespace toys
}  // namespace sandtable

#endif  // SANDTABLE_TESTS_TOY_SPECS_H_
