// Trace smoke test (label trace-smoke): runs the real bench_parallel_scaling
// binary with --trace-out under small budgets, then gates the produced Chrome
// trace through bench_validate_json --trace — per-worker lanes, per-level BFS
// spans and barrier-wait spans must all be present — and finally runs
// scripts/trace_summary.py over it (skipped when python3 is unavailable).
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/util/json.h"

#ifndef SANDTABLE_BENCH_BIN
#define SANDTABLE_BENCH_BIN ""
#endif
#ifndef SANDTABLE_VALIDATOR_BIN
#define SANDTABLE_VALIDATOR_BIN ""
#endif
#ifndef SANDTABLE_TRACE_SUMMARY_PY
#define SANDTABLE_TRACE_SUMMARY_PY ""
#endif

namespace sandtable {
namespace {

int RunCmd(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(TraceSmoke, BenchTraceValidatesAndSummarizes) {
  const std::string dir = "/tmp/st-trace-smoke-" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string trace = dir + "/scaling.trace.json";
  const std::string bench_log = dir + "/bench.log";

  // Small caps keep the five rows (serial + par x{1,2,4,8}) under a few
  // seconds each; the trace still gets every span kind and worker lane.
  ASSERT_EQ(RunCmd("env SANDTABLE_BENCH_STATES=4000 SANDTABLE_BENCH_SECONDS=3 " +
                   std::string(SANDTABLE_BENCH_BIN) + " --trace-out " + trace +
                   " > " + bench_log + " 2>&1"),
            0)
      << "bench failed; log at " << bench_log;

  ASSERT_EQ(RunCmd(std::string(SANDTABLE_VALIDATOR_BIN) + " " + trace +
                   " --trace --expect-span bfs.level --expect-span barrier.wait"
                   " --expect-span worker.wave --expect-span bfs.merge"
                   " --expect-lanes 4"),
            0);

  // The acceptance invariant directly: one run_id shared by trace metadata
  // and every bench result row's report would require --metrics-out; here we
  // at least pin the metadata schema the tooling depends on.
  std::ifstream f(trace);
  std::stringstream ss;
  ss << f.rdbuf();
  auto doc = Json::Parse(ss.str());
  ASSERT_TRUE(doc.ok()) << doc.error();
  EXPECT_EQ(doc.value()["metadata"]["schema"].as_string(), "sandtable-trace-1");
  EXPECT_FALSE(doc.value()["metadata"]["run_id"].as_string().empty());

  if (RunCmd("command -v python3 > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available; trace_summary.py not exercised";
  }
  const std::string summary = dir + "/summary.txt";
  ASSERT_EQ(RunCmd("python3 " + std::string(SANDTABLE_TRACE_SUMMARY_PY) + " " +
                   trace + " > " + summary + " 2>&1"),
            0)
      << "trace_summary.py failed; output at " << summary;
  std::ifstream sf(summary);
  std::stringstream sss;
  sss << sf.rdbuf();
  EXPECT_NE(sss.str().find("top phases"), std::string::npos) << sss.str();
  EXPECT_NE(sss.str().find("worker"), std::string::npos) << sss.str();

  // JSON mode parses too.
  EXPECT_EQ(RunCmd("python3 " + std::string(SANDTABLE_TRACE_SUMMARY_PY) +
                   " --json " + trace + " > " + dir + "/summary.json 2>&1"),
            0);
}

}  // namespace
}  // namespace sandtable
