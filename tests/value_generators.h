// Shared random-value generator for property tests. Produces values covering
// every Value kind with bounded depth; model values use class "n" with
// indices 0..2 so node-permutation properties can be tested.
#ifndef SANDTABLE_TESTS_VALUE_GENERATORS_H_
#define SANDTABLE_TESTS_VALUE_GENERATORS_H_

#include <utility>
#include <vector>

#include "src/util/rng.h"
#include "src/value/value.h"

namespace sandtable {

inline Value RandomValue(Rng& rng, int depth = 3) {
  const uint64_t kind = rng.Below(depth > 0 ? 8 : 4);
  switch (kind) {
    case 0:
      return Value::Bool(rng.Below(2) == 0);
    case 1:
      return Value::Int(rng.Range(-5, 5));
    case 2: {
      const char* strs[] = {"a", "b", "Leader", "Follower", ""};
      return Value::Str(strs[rng.Below(5)]);
    }
    case 3:
      return Value::Model("n", static_cast<int>(rng.Below(3)));
    case 4: {
      std::vector<Value> elems;
      for (uint64_t i = rng.Below(4); i > 0; --i) {
        elems.push_back(RandomValue(rng, depth - 1));
      }
      return Value::Seq(std::move(elems));
    }
    case 5: {
      std::vector<Value> elems;
      for (uint64_t i = rng.Below(4); i > 0; --i) {
        elems.push_back(RandomValue(rng, depth - 1));
      }
      return Value::Set(std::move(elems));
    }
    case 6: {
      const char* names[] = {"x", "y", "z", "w"};
      std::vector<Value::Field> fields;
      const uint64_t n = rng.Below(4);
      for (uint64_t i = 0; i < n; ++i) {
        fields.emplace_back(names[i], RandomValue(rng, depth - 1));
      }
      return Value::Record(std::move(fields));
    }
    default: {
      std::vector<Value::Pair> pairs;
      const uint64_t n = rng.Below(4);
      for (uint64_t i = 0; i < n; ++i) {
        pairs.emplace_back(Value::Int(static_cast<int64_t>(i)),
                           RandomValue(rng, depth - 1));
      }
      return Value::Fun(std::move(pairs));
    }
  }
}

}  // namespace sandtable

#endif  // SANDTABLE_TESTS_VALUE_GENERATORS_H_
